// Concurrent-serving throughput: shared SharedModuleStore vs per-worker
// private ModuleStores, swept over worker counts. Prints tables and writes
// BENCH_server.json (repo root when launched via scripts/run_all.sh).
//
// What the sweep shows:
//   * encode-once: with the shared store, modules_encoded equals the number
//     of distinct modules at every worker count; private stores pay
//     N_workers x that (every worker encodes everything at startup);
//   * footprint: shared resident module bytes stay flat as workers scale,
//     private bytes grow linearly (the duplication is real memory);
//   * throughput: requests/s grows with workers because per-request
//     host-link stalls overlap across the pool.
//
// Honest-methodology note (matches device_model.h's substitution rule):
// module compute runs fp32 on the CPU, and the host->device link is a
// LinkModel — each request *actually sleeps* for the modeled transfer time
// of its host-resident module bytes plus a fixed link latency, releasing
// the core so transfers overlap like real DMA. The link latency is
// auto-calibrated to ~11x the measured single-request serve time, so the
// pool saturates beyond the largest swept worker count and scaling stays
// visible even on a single-core host. PC_THREADS is pinned to 1 so kernel
// parallelism does not multiply with worker-level parallelism.
//
// After the store sweep, a fault-rate sweep (0% / 5% / 20% injected
// encode+link+evict faults, sys/fault.h) measures availability under
// degradation: every fault either retries successfully or degrades to a
// full-prefill serve, so availability (served / submitted) should hold at
// 1.0 while the degraded fraction grows with the fault rate. Results land
// in BENCH_server.json under "fault_sweep".
//
// Finally a cluster-sharding sweep (sys/shard.h): 1/2/4/8 ShardRouter
// shards with replication R=min(2,N) serving a Zipf-skewed prompt mix.
// Throughput should grow with the shard count (each shard is a full worker
// pool overlapping its own link stalls) while the fleet-wide resident
// module footprint stays ~R x the distinct module bytes — NOT N x —
// because only ring owners pin modules and cross-shard fetches are
// streamed back out after the request. A shard-kill chaos run
// (PC_FAULTS "shardkill=...") then holds availability at 1.0 through
// kills, failovers, and auto-restarts. Results land under "shard_sweep" /
// "shard_chaos". `--shard-only` runs just this section at smoke scale and
// writes BENCH_shard_smoke.json (the CI chaos job's quick gate).
//
// Last, a tiered-store sweep (docs/INTERNALS.md §15): the same Zipf traffic
// over one store whose RAM is capped at 50% / 25% / 12.5% of the measured
// module working set, with the disk spill tier and the async prefetch
// pipeline (sys/prefetch.h) enabled. Every capped run must produce
// bitwise-identical texts to the uncapped reference, keep peak resident RAM
// under the cap, and show the prefetcher hiding some disk reads
// (prefetch_hit_rate > 0); a disk-fault chaos run (diskread/diskwrite
// injections) must hold availability at 1.0. Results land under
// "tiered_sweep" / "tiered_chaos". `--tiered-only` runs just this section
// at smoke scale and writes BENCH_tiered_smoke.json (CI's tiered gate).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/engine.h"
#include "core/shared_module_store.h"
#include "eval/table.h"
#include "eval/workload.h"
#include "model/induction.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "sys/fault.h"
#include "sys/server.h"
#include "sys/shard.h"

namespace {

using namespace pc;

constexpr int kModules = 10;

std::string two(int i) {
  char buf[4];
  std::snprintf(buf, sizeof(buf), "%02d", i);
  return buf;
}

// 10 fact modules: module i holds "q0i a{2i} a{2i+1} ." plus filler.
std::string build_schema() {
  std::ostringstream os;
  os << "<schema name=\"facts\">\n";
  for (int i = 0; i < kModules; ++i) {
    os << "  <module name=\"d" << two(i) << "\">w" << two(i % 30) << " w"
       << two((i + 7) % 30) << " q" << two(i) << " a" << two(2 * i) << " a"
       << two(2 * i + 1) << " . w" << two((i + 13) % 30) << "</module>\n";
  }
  os << "</schema>";
  return os.str();
}

// Each prompt imports 4 modules (the asked one plus three others) and asks
// one question; 2 variants per asked module -> 20 distinct prompts.
std::vector<std::string> build_prompts() {
  std::vector<std::string> prompts;
  for (int v = 0; v < 2; ++v) {
    for (int i = 0; i < kModules; ++i) {
      std::ostringstream os;
      os << "<prompt schema=\"facts\">";
      for (int j = 0; j < 4; ++j) {
        os << "<d" << two((i + j * (v + 1)) % kModules) << "/>";
      }
      os << " question: q" << two(i) << "</prompt>";
      prompts.push_back(os.str());
    }
  }
  return prompts;
}

// Shared-module traffic for the batching sweep: every request imports the
// same four modules, so co-resident requests share their paged KV. The
// contrast workload is build_prompts(), whose module sets spread over all
// ten modules ("private": each in-flight request needs mostly its own
// renditions resident).
std::vector<std::string> build_shared_prompts() {
  std::vector<std::string> prompts;
  for (int i = 0; i < 4; ++i) {
    std::ostringstream os;
    os << "<prompt schema=\"facts\"><d00/><d01/><d02/><d03/> question: q"
       << two(i) << "</prompt>";
    prompts.push_back(os.str());
  }
  return prompts;
}

struct RunResult {
  std::string mode;
  int workers = 0;
  int requests = 0;
  ServerStats stats;
};

// One row of the module-storage-format comparison (fp32/q8/q4): resident
// footprint of the encoded module set, the modeled host-link time to move
// it once, and measured serve time over both retrieval paths.
struct KvFormatResult {
  std::string format;                // "fp32", "q8", or "q4"
  size_t module_resident_bytes = 0;  // encoded module set, resident payload
  double link_transfer_ms = 0;       // modeled: the whole set crossing the link
  double copy_serve_ms = 0;          // mean serve, memcpy/dequantize path
  double zero_copy_serve_ms = 0;     // mean serve, in-place (int8/int4) path
  uint64_t dequant_rows = 0;         // rows dequantized by the copy path
};

struct BatchRunResult {
  std::string traffic;  // "shared" or "private" module reuse across requests
  int max_batch = 0;
  int requests = 0;
  ServerStats stats;
};

struct FaultRunResult {
  double rate = 0;
  std::string spec;  // "" for the clean reference run
  std::string mode = "pool";  // "pool" (worker pool) or "batch"
  int workers = 0;
  int requests = 0;
  uint64_t injected = 0;
  ServerStats stats;

  double availability() const {
    return stats.submitted == 0
               ? 1.0
               : static_cast<double>(stats.completed) /
                     static_cast<double>(stats.submitted);
  }
};

struct ShardRunResult {
  int shards = 0;
  int replication = 0;
  int requests = 0;
  std::string fault_spec;        // "" for the clean sweep rows
  uint64_t injected = 0;         // shardkill injections during this run
  uint64_t resp_failover_sum = 0;  // sum of per-response failover counts
  bool all_served = true;        // every response kOk or kDegraded
  ShardRouterStats stats;
};

// Deterministic Zipf(s) popularity over the prompt mix: rank-k probability
// proportional to (k+1)^-s, sampled from a counter-based hash so the
// traffic replays identically across shard counts.
constexpr double kZipfS = 0.8;

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::vector<double> zipf_cdf(size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

size_t zipf_pick(const std::vector<double>& cdf, uint64_t seed, int i) {
  const double u =
      static_cast<double>(mix64(seed ^ mix64(static_cast<uint64_t>(i))) >> 11) *
      0x1.0p-53;
  return static_cast<size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

// One ShardRouter run over Zipf traffic. `kill_at` >= 0 kills shard 0 after
// that many submits (the deterministic smoke's failover exercise);
// probabilistic kills come from an armed PC_FAULTS shardkill spec instead.
ShardRunResult run_shard_config(const Model& model,
                                const AccuracyWorkload& workload,
                                const std::string& schema,
                                const std::vector<std::string>& prompts,
                                const GenerateOptions& opts,
                                const LinkModel& link, int n_shards,
                                int requests, int restart_after, int kill_at) {
  ShardRunResult run;
  run.shards = n_shards;
  run.replication = std::min(2, n_shards);
  run.requests = requests;

  ShardConfig cfg;
  cfg.n_shards = n_shards;
  cfg.replication = run.replication;
  cfg.server.n_workers = 2;
  cfg.server.queue_capacity = 16;
  cfg.server.schemas = {schema};
  cfg.server.link = link;
  // Inter-shard interconnect: faster than the host link but not free, so
  // cross-shard fetches show up as measurable extra stall.
  cfg.cross_link.latency_s = link.latency_s / 4.0;
  cfg.cross_link.bandwidth_bytes_per_s = 8e9;
  cfg.restart_after_submits = restart_after;

  const std::vector<double> cdf = zipf_cdf(prompts.size(), kZipfS);
  const uint64_t injected_before =
      FaultInjector::global().injected(FaultPoint::kShardKill);
  {
    ShardRouter router(model, workload.tokenizer(), cfg);
    for (int i = 0; i < requests; ++i) {
      if (i == kill_at) router.kill_shard(0);
      router.submit(prompts[zipf_pick(cdf, 0x5eedf00dULL, i)], opts);
    }
    std::vector<ShardResponse> responses = router.drain();
    for (const ShardResponse& r : responses) {
      run.resp_failover_sum += static_cast<uint64_t>(r.failovers);
      if (r.resp.status != ServeStatus::kOk &&
          r.resp.status != ServeStatus::kDegraded) {
        run.all_served = false;
      }
    }
    // Heal before the final footprint snapshot: a restarted shard's owned
    // share is re-replicated, so resident_bytes_total reports the steady
    // state (~R x distinct bytes), not a transient hole.
    (void)router.replicate_now();
    run.stats = router.stats();
  }
  run.injected =
      FaultInjector::global().injected(FaultPoint::kShardKill) - injected_before;
  return run;
}

void print_shard_results(const std::vector<ShardRunResult>& runs) {
  TablePrinter table(
      "cluster sharding: Zipf traffic, replication R=min(2,N), streamed "
      "cross-fetches");
  table.set_header({"shards", "R", "req/s", "wall ms", "xfetch", "xfetch KB",
                    "resident KB", "kills", "failovers", "avail"});
  for (const ShardRunResult& r : runs) {
    table.add_row(
        {std::to_string(r.shards), std::to_string(r.replication),
         TablePrinter::fmt(r.stats.throughput_rps, 1),
         TablePrinter::fmt(r.stats.wall_ms, 1),
         std::to_string(r.stats.cross_fetches),
         TablePrinter::fmt(
             static_cast<double>(r.stats.cross_fetch_bytes) / 1e3, 1),
         TablePrinter::fmt(
             static_cast<double>(r.stats.resident_bytes_total) / 1e3, 1),
         std::to_string(r.stats.kills), std::to_string(r.stats.failovers),
         TablePrinter::fmt(r.stats.availability, 3)});
  }
  table.print(std::cout);
}

void print_shard_chaos(const ShardRunResult& r) {
  TablePrinter table("shard-kill chaos: availability through kills/restarts");
  table.set_header({"spec", "injected", "kills", "failovers", "restarts",
                    "degraded", "rereplic", "avail"});
  table.add_row({r.fault_spec, std::to_string(r.injected),
                 std::to_string(r.stats.kills),
                 std::to_string(r.stats.failovers),
                 std::to_string(r.stats.restarts),
                 std::to_string(r.stats.degraded),
                 std::to_string(r.stats.rereplications),
                 TablePrinter::fmt(r.stats.availability, 3)});
  table.print(std::cout);
}

std::string shard_run_json(const ShardRunResult& r) {
  std::ostringstream out;
  const ShardRouterStats& s = r.stats;
  out << "{\"shards\": " << r.shards << ", \"replication\": " << r.replication
      << ", \"requests\": " << r.requests
      << ", \"zipf_s\": " << TablePrinter::fmt(kZipfS, 2);
  if (!r.fault_spec.empty()) {
    out << ", \"fault_spec\": \"" << r.fault_spec << "\""
        << ", \"injected\": " << r.injected;
  }
  out << ", \"wall_ms\": " << TablePrinter::fmt(s.wall_ms, 1)
      << ", \"throughput_rps\": " << TablePrinter::fmt(s.throughput_rps, 2)
      << ", \"submitted\": " << s.submitted
      << ", \"completed\": " << s.completed << ", \"degraded\": " << s.degraded
      << ", \"timeouts\": " << s.timeouts << ", \"failed\": " << s.failed
      << ", \"kills\": " << s.kills << ", \"restarts\": " << s.restarts
      << ", \"failovers\": " << s.failovers
      << ", \"cross_fetches\": " << s.cross_fetches
      << ", \"cross_fetch_bytes\": " << s.cross_fetch_bytes
      << ", \"rereplications\": " << s.rereplications
      << ", \"unavailable_degrades\": " << s.unavailable_degrades
      << ", \"resident_bytes_total\": " << s.resident_bytes_total
      << ", \"availability\": " << TablePrinter::fmt(s.availability, 4) << "}";
  return out.str();
}

// --shard-only writes this instead of BENCH_server.json: a quick gate for
// CI (clean 1/2-shard rows plus a deterministic mid-stream shard kill).
void write_shard_smoke_json(const std::vector<ShardRunResult>& runs,
                            const ShardRunResult& kill_run) {
  bool all_served = kill_run.all_served;
  bool failovers_reconcile =
      kill_run.stats.failovers == kill_run.resp_failover_sum;
  for (const ShardRunResult& r : runs) {
    all_served = all_served && r.all_served;
    if (r.stats.failovers != r.resp_failover_sum) failovers_reconcile = false;
  }
  const bool kill_recovered = kill_run.stats.kills >= 1 &&
                              kill_run.stats.availability >= 1.0 &&
                              kill_run.stats.failed == 0 &&
                              kill_run.stats.timeouts == 0;

  std::ofstream out("BENCH_shard_smoke.json");
  out << "{\n"
      << "  \"provenance\": " << bench::provenance_json() << ",\n"
      << "  \"shard_sweep\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    out << "    " << shard_run_json(runs[i])
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"shard_kill\": " << shard_run_json(kill_run) << ",\n"
      << "  \"checks\": {\n"
      << "    \"shard_smoke_all_served\": " << (all_served ? "true" : "false")
      << ",\n"
      << "    \"shard_smoke_kill_recovered\": "
      << (kill_recovered ? "true" : "false") << ",\n"
      << "    \"shard_smoke_failovers_reconcile\": "
      << (failovers_reconcile ? "true" : "false") << "\n"
      << "  }\n}\n";
  std::cout << "\nwrote BENCH_shard_smoke.json\n";
}

// One row of the tiered-store sweep: RAM-capped serving over the disk
// spill tier with the async prefetch pipeline, checked bitwise against the
// uncapped reference run.
struct TieredRunResult {
  std::string label;         // "uncapped", "50%", "25%", "12.5%"
  size_t ram_cap_bytes = 0;  // device+host RAM budget; 0 = uncapped
  int requests = 0;
  std::string fault_spec;    // "" except for the disk-fault chaos run
  uint64_t injected = 0;     // diskread+diskwrite injections during the run
  bool bitwise_identical = true;  // all texts match the reference, all served
  size_t peak_resident = 0;       // store high-water RAM mark
  uint64_t prefetch_prompts = 0;  // prompts the pipeline accepted
  uint64_t prefetch_keys = 0;     // store.prefetch() calls it issued
  DiskTierStats disk;
  ServerStats stats;

  bool all_served() const {
    return stats.completed == stats.submitted && stats.failed == 0 &&
           stats.timeouts == 0 && stats.shed == 0;
  }
  // Conservation law over the spill records (exact at quiescence): every
  // spill is consumed by exactly one fault-in, disk eviction, or failed
  // read, or is still on disk.
  bool disk_reconciles() const {
    return disk.spills == disk.faults + disk.evictions + disk.read_failures +
                              static_cast<uint64_t>(disk.spilled);
  }
};

// One tiered run over Zipf traffic. ram_cap 0 is the uncapped reference
// (no disk tier, no prefetch); otherwise RAM is capped at ram_cap with the
// spill tier unbounded and the prefetch pipeline on. `texts_out` collects
// served texts in submission order (the reference run); `reference`
// compares against them bitwise.
TieredRunResult run_tiered_config(const Model& model,
                                  const AccuracyWorkload& workload,
                                  const std::string& schema,
                                  const std::vector<std::string>& prompts,
                                  const GenerateOptions& opts,
                                  const LinkModel& link, size_t ram_cap,
                                  int requests,
                                  const std::vector<std::string>* reference,
                                  std::vector<std::string>* texts_out) {
  TieredRunResult run;
  run.ram_cap_bytes = ram_cap;
  run.requests = requests;

  ServerConfig cfg;
  cfg.n_workers = 2;
  cfg.queue_capacity = 16;
  cfg.schemas = {schema};
  cfg.link = link;

  // One shard so the cap is exact (no per-shard slicing slack); host gets a
  // token 1-byte slice so every RAM-resident module sits on the "device"
  // side of the cap and overflow goes straight to disk.
  std::unique_ptr<SharedModuleStore> store;
  if (ram_cap == 0) {
    store = std::make_unique<SharedModuleStore>(0, 0, /*n_shards=*/1);
  } else {
    DiskTierConfig disk;
    disk.enabled = true;
    // Simulated disk link: cheaper than the host link (same shape as the
    // shard sweep's interconnect) but not free, so fault-ins the prefetcher
    // fails to hide show up as measurable admission stall.
    disk.read_latency_s = link.latency_s / 4.0;
    disk.read_bandwidth_bytes_per_s = 8e9;
    cfg.prefetch = true;
    cfg.prefetch_depth = 4;
    store = std::make_unique<SharedModuleStore>(ram_cap, /*host=*/1, disk,
                                                /*n_shards=*/1);
  }

  const std::vector<double> cdf = zipf_cdf(prompts.size(), kZipfS);
  {
    Server server(model, workload.tokenizer(), *store, cfg);
    for (int i = 0; i < requests; ++i) {
      server.submit(prompts[zipf_pick(cdf, 0x7143eedULL, i)], opts);
    }
    std::vector<ServerResponse> responses = server.drain();
    for (const ServerResponse& r : responses) {
      if (!is_served(r.status)) run.bitwise_identical = false;
      if (texts_out != nullptr) texts_out->push_back(r.result.text);
      if (reference != nullptr &&
          (r.id >= reference->size() ||
           (*reference)[static_cast<size_t>(r.id)] != r.result.text)) {
        run.bitwise_identical = false;
      }
    }
    run.stats = server.stats();
    if (const StorePrefetcher* p = server.prefetcher()) {
      const StorePrefetcher::Stats ps = p->stats();
      run.prefetch_prompts = ps.prompts;
      run.prefetch_keys = ps.keys_issued;
    }
  }
  // Past the server's scope: workers and the prefetcher have joined, so the
  // disk counters are quiescent and the conservation law must hold exactly.
  run.peak_resident = store->peak_resident_bytes();
  run.disk = store->disk_stats();
  return run;
}

struct TieredSweep {
  TieredRunResult reference;
  std::vector<TieredRunResult> capped;  // 50% / 25% / 12.5% RAM caps
  TieredRunResult chaos;                // tightest cap + disk faults
};

TieredSweep run_tiered_sweep(const Model& model,
                             const AccuracyWorkload& workload,
                             const std::string& schema,
                             const std::vector<std::string>& prompts,
                             const GenerateOptions& opts,
                             const LinkModel& link, size_t module_bytes,
                             int requests) {
  TieredSweep sweep;
  std::vector<std::string> ref_texts;
  sweep.reference =
      run_tiered_config(model, workload, schema, prompts, opts, link,
                        /*ram_cap=*/0, requests, nullptr, &ref_texts);
  sweep.reference.label = "uncapped";

  const struct { const char* label; size_t divisor; } kCaps[] = {
      {"50%", 2}, {"25%", 4}, {"12.5%", 8}};
  for (const auto& cap : kCaps) {
    TieredRunResult r = run_tiered_config(
        model, workload, schema, prompts, opts, link,
        std::max<size_t>(1, module_bytes / cap.divisor), requests, &ref_texts,
        nullptr);
    r.label = cap.label;
    sweep.capped.push_back(std::move(r));
  }

  // Disk-fault chaos at the tightest cap: injected read faults fall back to
  // a re-encode (deterministic, so texts stay bitwise-identical) and write
  // faults degrade the spill to a destroy-eviction — availability holds.
  const std::string main_spec = FaultInjector::global().spec();
  const std::string chaos_spec = "seed=77,diskread=0.2,diskwrite=0.2";
  FaultInjector::global().configure(chaos_spec);
  const uint64_t injected_before =
      FaultInjector::global().injected(FaultPoint::kDiskRead) +
      FaultInjector::global().injected(FaultPoint::kDiskWrite);
  sweep.chaos = run_tiered_config(model, workload, schema, prompts, opts,
                                  link, std::max<size_t>(1, module_bytes / 8),
                                  requests, &ref_texts, nullptr);
  sweep.chaos.label = "12.5%+faults";
  sweep.chaos.fault_spec = chaos_spec;
  sweep.chaos.injected =
      FaultInjector::global().injected(FaultPoint::kDiskRead) +
      FaultInjector::global().injected(FaultPoint::kDiskWrite) -
      injected_before;
  FaultInjector::global().configure(main_spec);
  return sweep;
}

void print_tiered_results(const TieredSweep& sweep) {
  TablePrinter table(
      "tiered store: RAM-capped Zipf serving, disk spill + async prefetch");
  table.set_header({"ram cap", "cap KB", "req/s", "ttft p50", "spills",
                    "faults", "pf hit", "stall ms", "peak KB", "bitwise"});
  std::vector<const TieredRunResult*> rows;
  rows.push_back(&sweep.reference);
  for (const TieredRunResult& r : sweep.capped) rows.push_back(&r);
  for (const TieredRunResult* r : rows) {
    table.add_row(
        {r->label,
         r->ram_cap_bytes == 0
             ? std::string("-")
             : TablePrinter::fmt(static_cast<double>(r->ram_cap_bytes) / 1e3,
                                 1),
         TablePrinter::fmt(r->stats.throughput_rps, 1),
         TablePrinter::fmt_ms(r->stats.ttft.p50_ms()),
         std::to_string(r->disk.spills), std::to_string(r->disk.faults),
         TablePrinter::fmt(r->disk.prefetch_hit_rate(), 3),
         TablePrinter::fmt(r->disk.stall_ms(), 1),
         TablePrinter::fmt(static_cast<double>(r->peak_resident) / 1e3, 1),
         r->bitwise_identical ? "yes" : "NO"});
  }
  table.print(std::cout);
}

void print_tiered_chaos(const TieredRunResult& r) {
  TablePrinter table("disk-fault chaos: availability through read/write faults");
  table.set_header({"spec", "injected", "read fail", "spill fail", "faults",
                    "avail", "bitwise"});
  table.add_row({r.fault_spec, std::to_string(r.injected),
                 std::to_string(r.disk.read_failures),
                 std::to_string(r.disk.spill_failures),
                 std::to_string(r.disk.faults),
                 TablePrinter::fmt(r.all_served() ? 1.0 : 0.0, 3),
                 r.bitwise_identical ? "yes" : "NO"});
  table.print(std::cout);
}

std::string tiered_run_json(const TieredRunResult& r) {
  std::ostringstream out;
  const DiskTierStats& d = r.disk;
  const ServerStats& s = r.stats;
  out << "{\"label\": \"" << r.label << "\", \"ram_cap_bytes\": "
      << r.ram_cap_bytes << ", \"requests\": " << r.requests
      << ", \"zipf_s\": " << TablePrinter::fmt(kZipfS, 2);
  if (!r.fault_spec.empty()) {
    out << ", \"fault_spec\": \"" << r.fault_spec << "\""
        << ", \"injected\": " << r.injected;
  }
  out << ", \"wall_ms\": " << TablePrinter::fmt(s.wall_ms, 1)
      << ", \"throughput_rps\": " << TablePrinter::fmt(s.throughput_rps, 2)
      << ", \"ttft_p50_ms\": " << TablePrinter::fmt(s.ttft.p50_ms(), 3)
      << ", \"ttft_p99_ms\": " << TablePrinter::fmt(s.ttft.p99_ms(), 3)
      << ", \"modules_encoded\": " << s.modules_encoded
      << ", \"peak_resident_bytes\": " << r.peak_resident
      << ", \"spills\": " << d.spills << ", \"faults\": " << d.faults
      << ", \"prefetch_hits\": " << d.prefetch_hits
      << ", \"prefetch_misses\": " << d.prefetch_misses
      << ", \"prefetch_hit_rate\": "
      << TablePrinter::fmt(d.prefetch_hit_rate(), 4)
      << ", \"disk_evictions\": " << d.evictions
      << ", \"read_failures\": " << d.read_failures
      << ", \"spill_failures\": " << d.spill_failures
      << ", \"stall_ms\": " << TablePrinter::fmt(d.stall_ms(), 3)
      << ", \"spilled_final\": " << d.spilled
      << ", \"spilled_bytes_final\": " << d.spilled_bytes
      << ", \"prefetch_prompts\": " << r.prefetch_prompts
      << ", \"prefetch_keys\": " << r.prefetch_keys
      << ", \"bitwise_identical\": "
      << (r.bitwise_identical ? "true" : "false")
      << ", \"all_served\": " << (r.all_served() ? "true" : "false") << "}";
  return out.str();
}

// The tiered acceptance checks, shared by the smoke gate and the full run.
struct TieredChecks {
  bool all_served = true;
  bool bitwise = true;        // every capped/chaos run matched the reference
  bool rss_bounded = true;    // peak resident RAM <= cap (+1B host slice)
  bool spills_occur = true;   // every capped run actually hit the disk tier
  bool prefetch_hits = false; // the pipeline hid at least one disk read
  bool reconciles = true;     // spill-record conservation, every run
  bool chaos_available = true;
};

TieredChecks check_tiered(const TieredSweep& sweep) {
  TieredChecks c;
  c.all_served = sweep.reference.all_served();
  std::vector<const TieredRunResult*> capped_and_chaos;
  for (const TieredRunResult& r : sweep.capped) capped_and_chaos.push_back(&r);
  capped_and_chaos.push_back(&sweep.chaos);
  for (const TieredRunResult* r : capped_and_chaos) {
    if (!r->all_served()) c.all_served = false;
    if (!r->bitwise_identical) c.bitwise = false;
    if (r->peak_resident > r->ram_cap_bytes + 1) c.rss_bounded = false;
    if (!r->disk_reconciles()) c.reconciles = false;
    if (r->fault_spec.empty()) {
      if (r->disk.spills == 0) c.spills_occur = false;
      if (r->disk.prefetch_hits > 0) c.prefetch_hits = true;
    }
  }
  c.chaos_available =
      sweep.chaos.all_served() && sweep.chaos.bitwise_identical;
  return c;
}

void write_tiered_checks(std::ostream& out, const TieredChecks& c) {
  out << "    \"tiered_all_served\": " << (c.all_served ? "true" : "false")
      << ",\n"
      << "    \"tiered_bitwise_identical\": " << (c.bitwise ? "true" : "false")
      << ",\n"
      << "    \"tiered_rss_bounded_by_cap\": "
      << (c.rss_bounded ? "true" : "false") << ",\n"
      << "    \"tiered_capped_runs_spill\": "
      << (c.spills_occur ? "true" : "false") << ",\n"
      << "    \"tiered_prefetch_hides_reads\": "
      << (c.prefetch_hits ? "true" : "false") << ",\n"
      << "    \"tiered_disk_accounting_reconciles\": "
      << (c.reconciles ? "true" : "false") << ",\n"
      << "    \"tiered_chaos_availability_is_full\": "
      << (c.chaos_available ? "true" : "false");
}

// --tiered-only writes this instead of BENCH_server.json: CI's quick gate
// for the disk tier (capped rows bitwise vs uncapped, plus disk-fault
// chaos).
void write_tiered_smoke_json(const TieredSweep& sweep) {
  const TieredChecks checks = check_tiered(sweep);
  std::ofstream out("BENCH_tiered_smoke.json");
  out << "{\n"
      << "  \"provenance\": " << bench::provenance_json() << ",\n"
      << "  \"tiered_reference\": " << tiered_run_json(sweep.reference)
      << ",\n"
      << "  \"tiered_sweep\": [\n";
  for (size_t i = 0; i < sweep.capped.size(); ++i) {
    out << "    " << tiered_run_json(sweep.capped[i])
        << (i + 1 < sweep.capped.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"tiered_chaos\": " << tiered_run_json(sweep.chaos)
      << ",\n"
      << "  \"checks\": {\n";
  write_tiered_checks(out, checks);
  out << "\n  }\n}\n";
  std::cout << "\nwrote BENCH_tiered_smoke.json\n";
}

void print_results(const std::vector<RunResult>& runs) {
  TablePrinter table("serving throughput: shared store vs private stores");
  table.set_header({"store", "workers", "req/s", "ttft p50", "ttft p99",
                    "encoded", "resident MB", "hit rate", "waits"});
  for (const RunResult& r : runs) {
    table.add_row(
        {r.mode, std::to_string(r.workers),
         TablePrinter::fmt(r.stats.throughput_rps, 1),
         TablePrinter::fmt_ms(r.stats.ttft.p50_ms()),
         TablePrinter::fmt_ms(r.stats.ttft.p99_ms()),
         std::to_string(r.stats.modules_encoded),
         TablePrinter::fmt(
             static_cast<double>(r.stats.resident_module_bytes) / 1e6, 2),
         TablePrinter::fmt(r.stats.store_hit_rate, 3),
         std::to_string(r.stats.single_flight_waits)});
  }
  table.print(std::cout);
}

void print_kv_format_results(const std::vector<KvFormatResult>& runs) {
  TablePrinter table("module storage format: fp32 vs q8 (Q8_0) vs q4 (Q4_0)");
  table.set_header({"format", "resident KB", "link ms", "copy serve",
                    "zero-copy serve", "dequant rows"});
  for (const KvFormatResult& r : runs) {
    table.add_row(
        {r.format,
         TablePrinter::fmt(static_cast<double>(r.module_resident_bytes) / 1e3,
                           1),
         TablePrinter::fmt_ms(r.link_transfer_ms),
         TablePrinter::fmt_ms(r.copy_serve_ms),
         TablePrinter::fmt_ms(r.zero_copy_serve_ms),
         std::to_string(r.dequant_rows)});
  }
  table.print(std::cout);
}

void print_batch_results(const std::vector<BatchRunResult>& runs) {
  TablePrinter table(
      "continuous batching: shared vs private module traffic (paged KV)");
  table.set_header({"traffic", "batch", "req/s", "ttft p50", "iters",
                    "kv peak KB", "module KB", "cow"});
  for (const BatchRunResult& r : runs) {
    table.add_row(
        {r.traffic, std::to_string(r.max_batch),
         TablePrinter::fmt(r.stats.throughput_rps, 1),
         TablePrinter::fmt_ms(r.stats.ttft.p50_ms()),
         std::to_string(r.stats.batch_iterations),
         TablePrinter::fmt(static_cast<double>(r.stats.kv_peak_bytes) / 1e3,
                           1),
         TablePrinter::fmt(static_cast<double>(r.stats.kv_module_bytes) / 1e3,
                           1),
         std::to_string(r.stats.kv_cow_copies)});
  }
  table.print(std::cout);
}

void print_fault_results(const std::vector<FaultRunResult>& runs) {
  TablePrinter table("availability under injected faults (encode+link+evict)");
  table.set_header({"mode", "fault rate", "injected", "ok", "degraded",
                    "retries", "availability", "ttft p50", "degraded p50"});
  for (const FaultRunResult& r : runs) {
    table.add_row(
        {r.mode, TablePrinter::fmt(r.rate, 2), std::to_string(r.injected),
         std::to_string(r.stats.completed - r.stats.degraded),
         std::to_string(r.stats.degraded), std::to_string(r.stats.retries),
         TablePrinter::fmt(r.availability(), 3),
         TablePrinter::fmt_ms(r.stats.ttft.p50_ms()),
         TablePrinter::fmt_ms(r.stats.degraded_ttft.p50_ms())});
  }
  table.print(std::cout);
}

void write_json(const std::vector<RunResult>& runs,
                const std::vector<BatchRunResult>& batch_runs,
                const std::vector<FaultRunResult>& fault_runs,
                const std::vector<KvFormatResult>& kv_format_runs,
                const std::vector<ShardRunResult>& shard_runs,
                const ShardRunResult& shard_chaos,
                const TieredSweep& tiered,
                size_t distinct_modules,
                size_t module_bytes, const LinkModel& link,
                double calibrated_serve_ms) {
  // Acceptance checks, evaluated over the sweep.
  bool shared_encodes_equal_distinct = true;
  bool private_encodes_are_n_times = true;
  bool shared_resident_never_higher = true;   // <= private at every count
  bool shared_resident_lower_when_scaled = true;  // < private for N >= 2
  bool shared_throughput_increases = true;
  double prev_shared_rps = 0;
  for (const RunResult& r : runs) {
    if (r.mode == "shared") {
      if (r.stats.modules_encoded != distinct_modules) {
        shared_encodes_equal_distinct = false;
      }
      if (r.stats.throughput_rps <= prev_shared_rps) {
        shared_throughput_increases = false;
      }
      prev_shared_rps = r.stats.throughput_rps;
      for (const RunResult& p : runs) {
        if (p.mode != "private" || p.workers != r.workers) continue;
        if (r.stats.resident_module_bytes > p.stats.resident_module_bytes) {
          shared_resident_never_higher = false;
        }
        if (r.workers >= 2 && r.stats.resident_module_bytes >=
                                  p.stats.resident_module_bytes) {
          shared_resident_lower_when_scaled = false;
        }
      }
    } else if (r.stats.modules_encoded !=
               distinct_modules * static_cast<size_t>(r.workers)) {
      private_encodes_are_n_times = false;
    }
  }

  std::ofstream out("BENCH_server.json");
  out << "{\n"
      << "  \"provenance\": " << bench::provenance_json() << ",\n"
      << "  \"distinct_modules\": " << distinct_modules << ",\n"
      << "  \"module_bytes_total\": " << module_bytes << ",\n"
      << "  \"calibrated_serve_ms\": "
      << TablePrinter::fmt(calibrated_serve_ms, 3) << ",\n"
      << "  \"link_model\": {\"latency_s\": " << link.latency_s
      << ", \"bandwidth_bytes_per_s\": " << link.bandwidth_bytes_per_s
      << "},\n"
      << "  \"note\": \"host-link stalls are simulated sleeps (see "
         "bench_server.cpp header); compute is measured fp32 CPU\",\n"
      << "  \"configs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    const ServerStats& s = r.stats;
    out << "    {\"store\": \"" << r.mode << "\", \"workers\": " << r.workers
        << ", \"requests\": " << r.requests
        << ", \"failed\": " << s.failed
        << ", \"wall_ms\": " << TablePrinter::fmt(s.wall_ms, 1)
        << ", \"throughput_rps\": " << TablePrinter::fmt(s.throughput_rps, 2)
        << ", \"ttft_p50_ms\": " << TablePrinter::fmt(s.ttft.p50_ms(), 3)
        << ", \"ttft_p99_ms\": " << TablePrinter::fmt(s.ttft.p99_ms(), 3)
        << ", \"engine_ttft_p50_ms\": "
        << TablePrinter::fmt(s.engine_ttft.p50_ms(), 3)
        << ", \"modules_encoded\": " << s.modules_encoded
        << ", \"thrash_reencodes\": " << s.thrash_reencodes
        << ", \"store_hits\": " << s.store.hits
        << ", \"store_misses\": " << s.store.misses
        << ", \"store_hit_rate\": " << TablePrinter::fmt(s.store_hit_rate, 4)
        << ", \"resident_module_bytes\": " << s.resident_module_bytes
        << ", \"bytes_deduplicated\": " << s.bytes_deduplicated
        << ", \"single_flight_waits\": " << s.single_flight_waits << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  // Batching acceptance: at 8-way concurrency the iteration loop must beat
  // its own single-request pacing by >= 1.5x, and shared-module traffic
  // must hold a measurably smaller peak paged-KV footprint than
  // private-module traffic (§3.4).
  double batching_speedup_at_8 = 0;
  bool shared_kv_peak_below_private = true;
  bool shared_kv_modules_below_private = true;
  {
    double rps1 = 0, rps8 = 0;
    for (const BatchRunResult& r : batch_runs) {
      if (r.traffic != "shared") continue;
      if (r.max_batch == 1) rps1 = r.stats.throughput_rps;
      if (r.max_batch == 8) rps8 = r.stats.throughput_rps;
    }
    if (rps1 > 0) batching_speedup_at_8 = rps8 / rps1;
    for (const BatchRunResult& s : batch_runs) {
      if (s.traffic != "shared") continue;
      for (const BatchRunResult& p : batch_runs) {
        if (p.traffic != "private" || p.max_batch != s.max_batch) continue;
        if (s.stats.kv_peak_bytes >= p.stats.kv_peak_bytes) {
          shared_kv_peak_below_private = false;
        }
        if (s.stats.kv_module_bytes >= p.stats.kv_module_bytes) {
          shared_kv_modules_below_private = false;
        }
      }
    }
  }

  out << "  ],\n  \"batching\": [\n";
  for (size_t i = 0; i < batch_runs.size(); ++i) {
    const BatchRunResult& r = batch_runs[i];
    const ServerStats& s = r.stats;
    out << "    {\"traffic\": \"" << r.traffic << "\""
        << ", \"max_batch\": " << r.max_batch
        << ", \"requests\": " << r.requests
        << ", \"failed\": " << s.failed
        << ", \"wall_ms\": " << TablePrinter::fmt(s.wall_ms, 1)
        << ", \"throughput_rps\": " << TablePrinter::fmt(s.throughput_rps, 2)
        << ", \"ttft_p50_ms\": " << TablePrinter::fmt(s.ttft.p50_ms(), 3)
        << ", \"ttft_p99_ms\": " << TablePrinter::fmt(s.ttft.p99_ms(), 3)
        << ", \"batch_iterations\": " << s.batch_iterations
        << ", \"batch_tokens\": " << s.batch_tokens
        << ", \"kv_peak_bytes\": " << s.kv_peak_bytes
        << ", \"kv_module_bytes\": " << s.kv_module_bytes
        << ", \"kv_cow_copies\": " << s.kv_cow_copies << "}"
        << (i + 1 < batch_runs.size() ? "," : "") << "\n";
  }

  // Fault-sweep acceptance: degradable faults (encode/link/evict) must not
  // cost availability — every request is still served, some degraded.
  bool fault_availability_full = true;
  bool degraded_grows_with_rate = true;
  uint64_t prev_degraded = 0;
  for (const FaultRunResult& r : fault_runs) {
    if (r.availability() < 1.0) fault_availability_full = false;
    if (r.mode != "pool") continue;  // monotonicity is a per-mode property
    if (r.stats.degraded < prev_degraded) degraded_grows_with_rate = false;
    prev_degraded = r.stats.degraded;
  }

  // Format acceptance: q8 module storage must shrink the resident module
  // set to <= 30% of fp32 (Q8_0 is ~25% payload plus per-row scales), and
  // q4 to <= 16% (Q4_0 is 12.5% payload plus one fp32 scale per 32-value
  // block; exactly 20 bytes per block vs 128 fp32 bytes, so the bound holds
  // with a little margin for final-block padding when kv_dim is not a
  // multiple of 32).
  size_t fp32_resident = 0, q8_resident = 0, q4_resident = 0;
  for (const KvFormatResult& r : kv_format_runs) {
    if (r.format == "fp32") fp32_resident = r.module_resident_bytes;
    if (r.format == "q8") q8_resident = r.module_resident_bytes;
    if (r.format == "q4") q4_resident = r.module_resident_bytes;
  }
  const bool q8_resident_le_30pct =
      fp32_resident > 0 &&
      static_cast<double>(q8_resident) <= 0.30 * static_cast<double>(fp32_resident);
  const bool q4_resident_le_16pct =
      fp32_resident > 0 &&
      static_cast<double>(q4_resident) <= 0.16 * static_cast<double>(fp32_resident);

  out << "  ],\n  \"kv_format\": [\n";
  for (size_t i = 0; i < kv_format_runs.size(); ++i) {
    const KvFormatResult& r = kv_format_runs[i];
    out << "    {\"format\": \"" << r.format << "\""
        << ", \"module_resident_bytes\": " << r.module_resident_bytes
        << ", \"link_transfer_ms\": "
        << TablePrinter::fmt(r.link_transfer_ms, 3)
        << ", \"copy_serve_ms\": " << TablePrinter::fmt(r.copy_serve_ms, 3)
        << ", \"zero_copy_serve_ms\": "
        << TablePrinter::fmt(r.zero_copy_serve_ms, 3)
        << ", \"dequant_rows\": " << r.dequant_rows << "}"
        << (i + 1 < kv_format_runs.size() ? "," : "") << "\n";
  }

  out << "  ],\n  \"fault_sweep\": [\n";
  for (size_t i = 0; i < fault_runs.size(); ++i) {
    const FaultRunResult& r = fault_runs[i];
    const ServerStats& s = r.stats;
    out << "    {\"fault_rate\": " << TablePrinter::fmt(r.rate, 2)
        << ", \"fault_spec\": \"" << r.spec << "\""
        << ", \"mode\": \"" << r.mode << "\""
        << ", \"workers\": " << r.workers
        << ", \"requests\": " << r.requests
        << ", \"injected\": " << r.injected
        << ", \"submitted\": " << s.submitted
        << ", \"ok\": " << (s.completed - s.degraded)
        << ", \"degraded\": " << s.degraded
        << ", \"retries\": " << s.retries
        << ", \"shed\": " << s.shed
        << ", \"timeouts\": " << s.timeouts
        << ", \"failed\": " << s.failed
        << ", \"availability\": " << TablePrinter::fmt(r.availability(), 4)
        << ", \"ttft_p50_ms\": " << TablePrinter::fmt(s.ttft.p50_ms(), 3)
        << ", \"degraded_ttft_p50_ms\": "
        << TablePrinter::fmt(s.degraded_ttft.p50_ms(), 3) << "}"
        << (i + 1 < fault_runs.size() ? "," : "") << "\n";
  }
  // Shard-sweep acceptance: throughput must grow 2 -> 4 -> 8 shards, the
  // fleet footprint must stay near R x the distinct module bytes instead
  // of N x (replicated owners + streamed cross-fetches), the chaos run
  // must hold availability 1.0, and the failover counter must reconcile
  // exactly with the per-response failover counts.
  double rps1 = 0, rps2 = 0, rps4 = 0, rps8 = 0;
  size_t resident1 = 0, resident8 = 0;
  bool shard_failovers_reconcile = true;
  for (const ShardRunResult& r : shard_runs) {
    if (r.shards == 1) { rps1 = r.stats.throughput_rps;
                         resident1 = r.stats.resident_bytes_total; }
    if (r.shards == 2) rps2 = r.stats.throughput_rps;
    if (r.shards == 4) rps4 = r.stats.throughput_rps;
    if (r.shards == 8) { rps8 = r.stats.throughput_rps;
                         resident8 = r.stats.resident_bytes_total; }
    if (r.stats.failovers != r.resp_failover_sum) {
      shard_failovers_reconcile = false;
    }
  }
  if (shard_chaos.stats.failovers != shard_chaos.resp_failover_sum) {
    shard_failovers_reconcile = false;
  }
  const bool shard_throughput_monotone =
      rps2 > rps1 && rps4 > rps2 && rps8 > rps4;
  const bool shard_resident_sublinear =
      resident1 > 0 && resident8 <= 3 * resident1;  // R=2 steady state ~2x
  const bool shard_chaos_available =
      shard_chaos.all_served && shard_chaos.stats.availability >= 1.0 &&
      shard_chaos.stats.failed == 0 && shard_chaos.stats.timeouts == 0;
  const bool shard_chaos_kills_reconcile =
      shard_chaos.stats.kills == shard_chaos.injected;

  out << "  ],\n  \"shard_sweep\": [\n";
  for (size_t i = 0; i < shard_runs.size(); ++i) {
    out << "    " << shard_run_json(shard_runs[i])
        << (i + 1 < shard_runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"shard_chaos\": " << shard_run_json(shard_chaos) << ",\n";

  // Tiered-store acceptance (docs/INTERNALS.md §15): RAM-capped serving
  // over the disk tier must stay bitwise-identical to the uncapped
  // reference, bound peak resident RAM by the cap, actually exercise the
  // spill path, and hide at least part of the disk reads behind the
  // prefetch pipeline; the disk-fault chaos run must hold availability 1.0.
  const TieredChecks tiered_checks = check_tiered(tiered);

  out << "  \"tiered_reference\": " << tiered_run_json(tiered.reference)
      << ",\n  \"tiered_sweep\": [\n";
  for (size_t i = 0; i < tiered.capped.size(); ++i) {
    out << "    " << tiered_run_json(tiered.capped[i])
        << (i + 1 < tiered.capped.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"tiered_chaos\": " << tiered_run_json(tiered.chaos)
      << ",\n";

  out << "  \"checks\": {\n"
      << "    \"shared_encodes_equal_distinct_modules\": "
      << (shared_encodes_equal_distinct ? "true" : "false") << ",\n"
      << "    \"private_encodes_are_workers_times_distinct\": "
      << (private_encodes_are_n_times ? "true" : "false") << ",\n"
      << "    \"shared_resident_never_higher_than_private\": "
      << (shared_resident_never_higher ? "true" : "false") << ",\n"
      << "    \"shared_resident_lower_when_scaled\": "
      << (shared_resident_lower_when_scaled ? "true" : "false") << ",\n"
      << "    \"shared_throughput_increases_with_workers\": "
      << (shared_throughput_increases ? "true" : "false") << ",\n"
      << "    \"batching_speedup_at_8\": "
      << TablePrinter::fmt(batching_speedup_at_8, 2) << ",\n"
      << "    \"batching_speedup_at_8_ge_1p5\": "
      << (batching_speedup_at_8 >= 1.5 ? "true" : "false") << ",\n"
      << "    \"batching_shared_kv_peak_below_private\": "
      << (shared_kv_peak_below_private ? "true" : "false") << ",\n"
      << "    \"batching_shared_kv_modules_below_private\": "
      << (shared_kv_modules_below_private ? "true" : "false") << ",\n"
      << "    \"kv_format_q8_resident_le_30pct_of_fp32\": "
      << (q8_resident_le_30pct ? "true" : "false") << ",\n"
      << "    \"kv_format_q4_resident_le_16pct_of_fp32\": "
      << (q4_resident_le_16pct ? "true" : "false") << ",\n"
      << "    \"fault_availability_is_full\": "
      << (fault_availability_full ? "true" : "false") << ",\n"
      << "    \"degraded_count_monotone_in_fault_rate\": "
      << (degraded_grows_with_rate ? "true" : "false") << ",\n"
      << "    \"shard_throughput_monotone_1_to_8\": "
      << (shard_throughput_monotone ? "true" : "false") << ",\n"
      << "    \"shard_resident_8_shards_le_3x_single\": "
      << (shard_resident_sublinear ? "true" : "false") << ",\n"
      << "    \"shard_failovers_reconcile_with_responses\": "
      << (shard_failovers_reconcile ? "true" : "false") << ",\n"
      << "    \"shard_chaos_availability_is_full\": "
      << (shard_chaos_available ? "true" : "false") << ",\n"
      << "    \"shard_chaos_kills_equal_injected\": "
      << (shard_chaos_kills_reconcile ? "true" : "false") << ",\n";
  write_tiered_checks(out, tiered_checks);
  out << "\n  }\n}\n";
  std::cout << "\nwrote BENCH_server.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Worker-level parallelism is the experiment; keep kernel-level
  // parallelism out of it (must happen before the global pool first spins
  // up inside the calibration serve).
  setenv("PC_THREADS", "1", /*overwrite=*/0);

  // --obs-summary prints the span/metric table after the sweep; setting
  // PC_TRACE=<path> (or any non-empty value, default bench_server_trace.json)
  // additionally exports a Perfetto trace of the whole run.
  bool obs_summary = false;
  bool shard_only = false;
  bool tiered_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--obs-summary") obs_summary = true;
    if (std::string(argv[i]) == "--shard-only") shard_only = true;
    if (std::string(argv[i]) == "--tiered-only") tiered_only = true;
  }

  bench::print_banner(
      shard_only ? "Cluster sharding smoke — ShardRouter over Zipf traffic"
      : tiered_only
          ? "Tiered store smoke — disk spill + async prefetch pipeline"
          : "Concurrent serving — shared vs private module stores",
      "simulated host link (sleeps), measured CPU compute; PC_FULL=1 for "
      "more requests");

  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 256});
  const std::string schema = build_schema();
  const std::vector<std::string> prompts = build_prompts();
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  opts.stop_tokens = {workload.stop_token()};

  // Calibration pass: one private engine, measure mean serve compute and
  // the distinct-module footprint.
  double calibrated_serve_ms;
  size_t module_bytes = 0;
  size_t distinct_modules = 0;
  {
    PromptCacheEngine probe(model, workload.tokenizer());
    probe.load_schema(schema);
    WallTimer timer;
    for (const std::string& p : prompts) (void)probe.serve(p, opts);
    calibrated_serve_ms =
        timer.elapsed_ms() / static_cast<double>(prompts.size());
    probe.store().for_each(
        [&](const std::string&, const EncodedModule& m, ModuleLocation) {
          module_bytes += m.payload_bytes();
          ++distinct_modules;
        });
  }

  // Link latency ~11x serve compute: a pool saturates only past ~12
  // workers, so 1 -> 8 stays in the linear-scaling regime; bandwidth adds a
  // real cost per host-resident byte (private stores, with their device
  // slice split N ways, keep more modules host-side and pay more here).
  LinkModel link;
  link.latency_s = 11.0 * calibrated_serve_ms / 1e3;
  link.bandwidth_bytes_per_s = 8e9;

  const int requests = bench::env_int("PC_REQUESTS",
                                      bench::full_mode() ? 160 : 60);
  const size_t device_capacity = module_bytes * 2 / 5;  // 40%: tier pressure

  if (shard_only) {
    // CI's quick gate: clean 1/2-shard rows, then a deterministic shard
    // kill mid-stream on 2 shards (R=2: the survivor owns everything, so
    // every in-flight request fails over and still serves).
    const int smoke_requests = std::min(requests, 24);
    std::vector<ShardRunResult> smoke_runs;
    for (int n : {1, 2}) {
      smoke_runs.push_back(run_shard_config(model, workload, schema, prompts,
                                            opts, link, n, smoke_requests,
                                            /*restart_after=*/0,
                                            /*kill_at=*/-1));
    }
    ShardRunResult kill_run = run_shard_config(
        model, workload, schema, prompts, opts, link, /*n_shards=*/2,
        smoke_requests, /*restart_after=*/0, /*kill_at=*/smoke_requests / 2);
    kill_run.fault_spec = "manual kill_shard(0) mid-stream";
    print_shard_results(smoke_runs);
    std::cout << "\n";
    print_shard_chaos(kill_run);
    write_shard_smoke_json(smoke_runs, kill_run);
    return 0;
  }

  if (tiered_only) {
    // CI's tiered gate: uncapped reference + 50/25/12.5% RAM caps + disk
    // faults, at smoke scale — bitwise identity and availability are the
    // point, not throughput.
    const int smoke_requests = std::min(requests, 30);
    TieredSweep sweep =
        run_tiered_sweep(model, workload, schema, prompts, opts, link,
                         module_bytes, smoke_requests);
    print_tiered_results(sweep);
    std::cout << "\n";
    print_tiered_chaos(sweep.chaos);
    write_tiered_smoke_json(sweep);
    return 0;
  }

  std::vector<RunResult> runs;
  for (const char* mode : {"shared", "private"}) {
    for (int workers : {1, 2, 4, 8}) {
      ServerConfig cfg;
      cfg.n_workers = workers;
      cfg.queue_capacity = 16;
      cfg.schemas = {schema};
      cfg.link = link;

      RunResult run;
      run.mode = mode;
      run.workers = workers;
      run.requests = requests;
      if (std::string(mode) == "shared") {
        SharedModuleStore store(device_capacity, /*host=*/0);
        Server server(model, workload.tokenizer(), store, cfg);
        for (int i = 0; i < requests; ++i) {
          server.submit(prompts[static_cast<size_t>(i) % prompts.size()],
                        opts);
        }
        (void)server.drain();
        run.stats = server.stats();
      } else {
        // Same total device budget, split across the private stores.
        cfg.engine.device_capacity_bytes =
            device_capacity / static_cast<size_t>(workers);
        Server server(model, workload.tokenizer(), cfg);
        for (int i = 0; i < requests; ++i) {
          server.submit(prompts[static_cast<size_t>(i) % prompts.size()],
                        opts);
        }
        (void)server.drain();
        run.stats = server.stats();
      }
      if (run.stats.failed > 0) {
        std::cout << "WARNING: " << run.stats.failed
                  << " failed serves in " << mode << "/" << workers << "\n";
      }
      runs.push_back(std::move(run));
    }
  }

  print_results(runs);
  std::cout << "\ncalibrated serve compute: "
            << TablePrinter::fmt_ms(calibrated_serve_ms)
            << "/req, link stall: "
            << TablePrinter::fmt_ms(link.latency_s * 1e3)
            << " + bytes_from_host/8GBps\n\n";

  // Module-storage-format comparison: the same schema and prompt mix under
  // fp32, q8 (Q8_0), and q4 (Q4_0) module storage. Measures the resident
  // footprint of the encoded module set, the modeled host-link time to move
  // it once (transfer is charged on stored — i.e. quantized — bytes), and
  // mean serve time on both retrieval paths: the memcpy path (which
  // dequantizes quantized rows on read, counted by
  // pc_store_dequant_rows_total) and the zero-copy path (which scores
  // quantized rows in the integer domain, dequantizing nothing).
  std::vector<KvFormatResult> kv_format_runs;
  for (const char* fmt : {"fp32", "q8", "q4"}) {
    KvFormatResult run;
    run.format = fmt;
    EngineConfig ecfg;
    ecfg.precision = std::string(fmt) == "q8"   ? StorePrecision::kQ8
                     : std::string(fmt) == "q4" ? StorePrecision::kQ4
                                                : StorePrecision::kFp32;
    {
      PromptCacheEngine copy_engine(model, workload.tokenizer(), ecfg);
      copy_engine.load_schema(schema);
      WallTimer timer;
      for (const std::string& p : prompts) (void)copy_engine.serve(p, opts);
      run.copy_serve_ms =
          timer.elapsed_ms() / static_cast<double>(prompts.size());
      copy_engine.store().for_each(
          [&](const std::string&, const EncodedModule& m, ModuleLocation) {
            run.module_resident_bytes += m.payload_bytes();
          });
      run.dequant_rows = copy_engine.store().dequant_rows();
    }
    {
      ecfg.zero_copy = true;
      PromptCacheEngine zc_engine(model, workload.tokenizer(), ecfg);
      zc_engine.load_schema(schema);
      WallTimer timer;
      for (const std::string& p : prompts) (void)zc_engine.serve(p, opts);
      run.zero_copy_serve_ms =
          timer.elapsed_ms() / static_cast<double>(prompts.size());
    }
    run.link_transfer_ms = link.stall_s(run.module_resident_bytes) * 1e3;
    kv_format_runs.push_back(std::move(run));
  }
  print_kv_format_results(kv_format_runs);
  std::cout << "\n";

  // Continuous-batching sweep: one iteration loop, 1..8 in-flight requests,
  // paged KV. "shared" traffic reuses the same four modules across every
  // request (co-resident requests share pages, §3.4); "private" traffic is
  // the main sweep's prompt mix, whose module sets spread over the whole
  // schema so each in-flight request needs mostly its own renditions.
  const std::vector<std::string> shared_prompts = build_shared_prompts();
  std::vector<BatchRunResult> batch_runs;
  for (const char* traffic : {"shared", "private"}) {
    const std::vector<std::string>& mix =
        std::string(traffic) == "shared" ? shared_prompts : prompts;
    for (int max_batch : {1, 2, 4, 8}) {
      ServerConfig cfg;
      cfg.batching = true;
      cfg.batch.max_batch = max_batch;
      cfg.queue_capacity = 16;
      cfg.schemas = {schema};
      cfg.link = link;

      BatchRunResult run;
      run.traffic = traffic;
      run.max_batch = max_batch;
      run.requests = requests;
      {
        Server server(model, workload.tokenizer(), cfg);
        for (int i = 0; i < requests; ++i) {
          server.submit(mix[static_cast<size_t>(i) % mix.size()], opts);
        }
        (void)server.drain();
        run.stats = server.stats();
      }
      if (run.stats.failed > 0) {
        std::cout << "WARNING: " << run.stats.failed
                  << " failed serves in batching/" << traffic << "/"
                  << max_batch << "\n";
      }
      batch_runs.push_back(std::move(run));
    }
  }
  print_batch_results(batch_runs);

  // Fault-rate sweep: availability under injected degradable faults. The
  // injector spec active during the main sweep (usually "") is restored
  // afterwards so provenance_json records what produced the main numbers.
  const std::string main_spec = FaultInjector::global().spec();
  std::vector<FaultRunResult> fault_runs;
  for (const double rate : {0.0, 0.05, 0.20}) {
    FaultRunResult run;
    run.rate = rate;
    run.workers = 4;
    run.requests = requests;
    if (rate > 0) {
      std::ostringstream spec;
      spec << "seed=42,encode=" << rate << ",link=" << rate << ",evict="
           << rate;
      run.spec = spec.str();
    }
    FaultInjector::global().configure(run.spec);
    const uint64_t injected_before = FaultInjector::global().injected_total();
    {
      ServerConfig cfg;
      cfg.n_workers = run.workers;
      cfg.queue_capacity = 16;
      cfg.schemas = {schema};
      cfg.link = link;
      SharedModuleStore store(device_capacity, /*host=*/0);
      Server server(model, workload.tokenizer(), store, cfg);
      for (int i = 0; i < requests; ++i) {
        server.submit(prompts[static_cast<size_t>(i) % prompts.size()], opts);
      }
      (void)server.drain();
      run.stats = server.stats();
    }
    run.injected = FaultInjector::global().injected_total() - injected_before;
    fault_runs.push_back(std::move(run));
  }

  // Same chaos, batching mode: the iteration loop must hold availability
  // 1.0 under the highest swept fault rate too.
  {
    FaultRunResult run;
    run.rate = 0.20;
    run.mode = "batch";
    run.workers = 4;  // max_batch: 4 in-flight requests
    run.requests = requests;
    run.spec = "seed=43,encode=0.2,link=0.2,evict=0.2";
    FaultInjector::global().configure(run.spec);
    const uint64_t injected_before = FaultInjector::global().injected_total();
    {
      ServerConfig cfg;
      cfg.batching = true;
      cfg.batch.max_batch = run.workers;
      cfg.queue_capacity = 16;
      cfg.schemas = {schema};
      cfg.link = link;
      SharedModuleStore store(device_capacity, /*host=*/0);
      Server server(model, workload.tokenizer(), store, cfg);
      for (int i = 0; i < requests; ++i) {
        server.submit(prompts[static_cast<size_t>(i) % prompts.size()], opts);
      }
      (void)server.drain();
      run.stats = server.stats();
    }
    run.injected = FaultInjector::global().injected_total() - injected_before;
    fault_runs.push_back(std::move(run));
  }
  FaultInjector::global().configure(main_spec);
  std::cout << "\n";
  print_fault_results(fault_runs);
  std::cout << "\n";

  // Cluster-sharding sweep: 1/2/4/8 shards, R=min(2,N), Zipf traffic.
  std::vector<ShardRunResult> shard_runs;
  for (int n : {1, 2, 4, 8}) {
    shard_runs.push_back(run_shard_config(model, workload, schema, prompts,
                                          opts, link, n, requests,
                                          /*restart_after=*/0,
                                          /*kill_at=*/-1));
  }
  print_shard_results(shard_runs);
  std::cout << "\n";

  // Shard-kill chaos: probabilistic kills from the injector's seeded
  // schedule, auto-restart after 5 submits, R=2 over 4 shards. Every kill
  // fails its in-flight requests over to a replica; availability holds 1.0.
  ShardRunResult shard_chaos;
  {
    const std::string chaos_spec = "seed=91,shardkill=0.1";
    FaultInjector::global().configure(chaos_spec);
    shard_chaos = run_shard_config(model, workload, schema, prompts, opts,
                                   link, /*n_shards=*/4, requests,
                                   /*restart_after=*/5, /*kill_at=*/-1);
    shard_chaos.fault_spec = chaos_spec;
    FaultInjector::global().configure(main_spec);
  }
  print_shard_chaos(shard_chaos);
  std::cout << "\n";

  // Tiered-store sweep: RAM caps at 50/25/12.5% of the measured working
  // set, disk spill + async prefetch, checked bitwise against an uncapped
  // reference; then disk-fault chaos at the tightest cap.
  TieredSweep tiered = run_tiered_sweep(model, workload, schema, prompts,
                                        opts, link, module_bytes, requests);
  print_tiered_results(tiered);
  std::cout << "\n";
  print_tiered_chaos(tiered.chaos);

  write_json(runs, batch_runs, fault_runs, kv_format_runs, shard_runs,
             shard_chaos, tiered, distinct_modules, module_bytes, link,
             calibrated_serve_ms);

  if (const char* trace = std::getenv("PC_TRACE");
      trace != nullptr && *trace != '\0') {
    const std::string path =
        trace[0] == '1' && trace[1] == '\0' ? "bench_server_trace.json" : trace;
    if (obs::write_perfetto_trace(path)) {
      std::cout << "wrote " << path << " (load in ui.perfetto.dev)\n";
    }
  }
  if (obs_summary) obs::print_summary(std::cout);
  return 0;
}
