// Micro-ablations (google-benchmark) for the design choices DESIGN.md calls
// out:
//   * buffered vs naive (PyTorch-style) KV concatenation — paper §4.2's
//     custom concat operator;
//   * fp32 vs fp16 module storage — the §5.5 memory/latency trade;
//   * paged sharing vs private copies for batched prompts — §3.4;
//   * module encode cost vs retrieve cost as module size grows — the
//     fundamental compute-once/copy-many asymmetry.
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "eval/workload.h"
#include "kv/kv_cache.h"
#include "kv/paged_pool.h"
#include "model/model.h"

namespace {

using namespace pc;

constexpr int kLayers = 4;
constexpr int kKvDim = 96;

KVCache make_module_states(int tokens) {
  KVCache kv(kLayers, kKvDim);
  std::vector<int> pos(static_cast<size_t>(tokens));
  for (int i = 0; i < tokens; ++i) pos[static_cast<size_t>(i)] = i;
  kv.append_tokens(pos);
  return kv;
}

void BM_ConcatBuffered(benchmark::State& state) {
  const KVCache module = make_module_states(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    KVCache seq(kLayers, kKvDim, ConcatPolicy::kBuffered);
    seq.reserve(static_cast<int>(state.range(0)) * 8);
    for (int m = 0; m < 8; ++m) seq.append_copy(module);
    benchmark::DoNotOptimize(seq.k_row(0, 0));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8 *
                          module.payload_bytes());
}
BENCHMARK(BM_ConcatBuffered)->Arg(128)->Arg(512);

void BM_ConcatNaive(benchmark::State& state) {
  const KVCache module = make_module_states(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // PyTorch-style torch.cat: every append reallocates exact-fit.
    KVCache seq(kLayers, kKvDim, ConcatPolicy::kNaive);
    for (int m = 0; m < 8; ++m) seq.append_copy(module);
    benchmark::DoNotOptimize(seq.k_row(0, 0));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8 *
                          module.payload_bytes());
}
BENCHMARK(BM_ConcatNaive)->Arg(128)->Arg(512);

// Engine-level retrieval with fp32 vs fp16 module storage.
struct RetrieveFixtureState {
  Tokenizer tokenizer{Vocab::basic_english()};
  Model model = Model::random(
      ModelConfig::llama_tiny(Vocab::basic_english().size(), 8192), 5);
};

RetrieveFixtureState& fixture() {
  static RetrieveFixtureState f;
  return f;
}

void run_retrieve(benchmark::State& state, StorePrecision precision) {
  auto& f = fixture();
  LatencyWorkload workload(3);
  const LatencySample sample = workload.make_sweep_sample(
      768, 4, "ret" + std::to_string(static_cast<int>(precision)));
  EngineConfig cfg;
  cfg.precision = precision;
  PromptCacheEngine engine(f.model, f.tokenizer, cfg);
  engine.load_schema(sample.schema_pml);
  const pml::PromptBinding binding = engine.bind(sample.prompt_pml);
  for (auto _ : state) {
    KVCache seq = f.model.make_cache();
    TtftBreakdown ttft;
    benchmark::DoNotOptimize(
        engine.assemble_and_prefill(binding, seq, &ttft));
  }
}

void BM_RetrieveFp32(benchmark::State& state) {
  run_retrieve(state, StorePrecision::kFp32);
}
void BM_RetrieveFp16(benchmark::State& state) {
  run_retrieve(state, StorePrecision::kFp16);
}
void BM_RetrieveQ8(benchmark::State& state) {
  run_retrieve(state, StorePrecision::kQ8);
}
BENCHMARK(BM_RetrieveFp32);
BENCHMARK(BM_RetrieveFp16);
BENCHMARK(BM_RetrieveQ8);

// Zero-copy vs memcpy assembly of the same prompt: borrowing module rows
// replaces the copy entirely (§6 shared-attention-states direction).
void BM_AssembleCopy(benchmark::State& state) {
  auto& f = fixture();
  LatencyWorkload workload(4);
  const LatencySample sample = workload.make_sweep_sample(1024, 4, "asmc");
  PromptCacheEngine engine(f.model, f.tokenizer);
  engine.load_schema(sample.schema_pml);
  const pml::PromptBinding binding = engine.bind(sample.prompt_pml);
  engine.ensure_encoded(binding);
  for (auto _ : state) {
    KVCache seq = f.model.make_cache();
    TtftBreakdown ttft;
    benchmark::DoNotOptimize(engine.assemble_and_prefill(binding, seq, &ttft));
  }
}
BENCHMARK(BM_AssembleCopy);

void BM_AssembleZeroCopy(benchmark::State& state) {
  auto& f = fixture();
  LatencyWorkload workload(4);
  const LatencySample sample = workload.make_sweep_sample(1024, 4, "asmz");
  PromptCacheEngine engine(f.model, f.tokenizer);
  engine.load_schema(sample.schema_pml);
  const pml::PromptBinding binding = engine.bind(sample.prompt_pml);
  engine.ensure_encoded(binding);
  for (auto _ : state) {
    SegmentedKVCache view(f.model.config().n_layers,
                          f.model.config().kv_dim(), 16);
    TtftBreakdown ttft;
    benchmark::DoNotOptimize(
        engine.assemble_and_prefill(binding, view, &ttft));
    engine.release_borrowed_pins();
  }
}
BENCHMARK(BM_AssembleZeroCopy);

// Decode-step cost over the two cache representations: the zero-copy view
// pays one pointer indirection per attended row.
void BM_DecodeStepContiguous(benchmark::State& state) {
  auto& f = fixture();
  const int ctx = 1024;
  std::vector<TokenId> toks(ctx, 300);
  std::vector<int> pos(ctx);
  for (int i = 0; i < ctx; ++i) pos[static_cast<size_t>(i)] = i;
  KVCache cache = f.model.make_cache();
  cache.reserve(ctx + 4);
  (void)f.model.forward(toks, pos, cache);
  const TokenId one = 300;
  int p = ctx;
  for (auto _ : state) {
    const int before = cache.size();
    benchmark::DoNotOptimize(
        f.model.forward({&one, 1}, {&p, 1}, cache));
    cache.truncate(before);
  }
}
BENCHMARK(BM_DecodeStepContiguous)->Unit(benchmark::kMillisecond);

void BM_DecodeStepSegmented(benchmark::State& state) {
  auto& f = fixture();
  const int ctx = 1024;
  std::vector<TokenId> toks(ctx, 300);
  std::vector<int> pos(ctx);
  for (int i = 0; i < ctx; ++i) pos[static_cast<size_t>(i)] = i;
  KVCache encoded = f.model.make_cache();
  encoded.reserve(ctx);
  (void)f.model.forward(toks, pos, encoded);
  const TokenId one = 300;
  int p = ctx;
  for (auto _ : state) {
    SegmentedKVCache view(f.model.config().n_layers,
                          f.model.config().kv_dim(), 4);
    view.append_borrowed(encoded, 0, encoded.size());
    benchmark::DoNotOptimize(f.model.forward({&one, 1}, {&p, 1}, view));
  }
}
BENCHMARK(BM_DecodeStepSegmented)->Unit(benchmark::kMillisecond);

// Batch assembly with shared module pages vs private copies (§3.4).
void BM_BatchSharedPages(benchmark::State& state) {
  for (auto _ : state) {
    PagedKVPool pool(16, 4096);
    PagedSequence module(pool);
    module.append_tokens(512);
    std::vector<PagedSequence> batch;
    for (int i = 0; i < 16; ++i) {
      PagedSequence s(pool);
      s.append_shared(module);
      s.append_tokens(32);
      batch.push_back(std::move(s));
    }
    benchmark::DoNotOptimize(pool.live_bytes());
  }
}
BENCHMARK(BM_BatchSharedPages);

void BM_BatchPrivateCopies(benchmark::State& state) {
  for (auto _ : state) {
    PagedKVPool pool(16, 4096);
    std::vector<PagedSequence> batch;
    for (int i = 0; i < 16; ++i) {
      PagedSequence s(pool);
      s.append_tokens(512);  // private copy of the module
      s.append_tokens(32);
      batch.push_back(std::move(s));
    }
    benchmark::DoNotOptimize(pool.live_bytes());
  }
}
BENCHMARK(BM_BatchPrivateCopies);

// Encode-once vs copy-many: module encoding runs the transformer, reuse is
// a memcpy. The gap is the entire premise of Prompt Cache.
void BM_ModuleEncode(benchmark::State& state) {
  auto& f = fixture();
  const int tokens = static_cast<int>(state.range(0));
  std::vector<TokenId> toks(static_cast<size_t>(tokens), 300);
  std::vector<int> pos(static_cast<size_t>(tokens));
  for (int i = 0; i < tokens; ++i) pos[static_cast<size_t>(i)] = i;
  for (auto _ : state) {
    KVCache kv = f.model.make_cache();
    kv.reserve(tokens);
    benchmark::DoNotOptimize(f.model.forward(toks, pos, kv));
  }
}
BENCHMARK(BM_ModuleEncode)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_ModuleReuse(benchmark::State& state) {
  auto& f = fixture();
  const int tokens = static_cast<int>(state.range(0));
  std::vector<TokenId> toks(static_cast<size_t>(tokens), 300);
  std::vector<int> pos(static_cast<size_t>(tokens));
  for (int i = 0; i < tokens; ++i) pos[static_cast<size_t>(i)] = i;
  KVCache encoded = f.model.make_cache();
  encoded.reserve(tokens);
  (void)f.model.forward(toks, pos, encoded);
  for (auto _ : state) {
    KVCache seq = f.model.make_cache();
    seq.reserve(tokens);
    seq.append_copy(encoded);
    benchmark::DoNotOptimize(seq.k_row(0, 0));
  }
}
BENCHMARK(BM_ModuleReuse)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
