// Reproduces the §5.6 use cases (Figures 6, 7, 8): code generation with
// source files as modules, union-based personalization, and parameterized
// prompts. For each, we measure TTFT for cached vs baseline serving on the
// real engine and report the generated-output agreement between the two
// paths (the paper reports identical/negligibly different outputs).
#include <iostream>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "eval/workload.h"
#include "pml/prompt_builder.h"
#include "pml/prompt_program.h"

namespace {

using namespace pc;

// Synthetic "source file" text of roughly n tokens from the basic vocab.
std::string code_like_text(const std::string& name, int n_tokens, Rng& rng) {
  const std::vector<std::string> words = {
      "class",  "function", "state",  "value", "name",   "set",  "get",
      "update", "move",     "play",   "start", "end",    "call", "use",
      "number", "list",     "map",    "unit",  "player", "game", "point",
      "line",   "turn",     "change", "find",  "make"};
  std::string out = "class " + name + " { ";
  for (int i = 0; i < n_tokens - 8; ++i) {
    out += rng.pick(words);
    out += (i % 9 == 8) ? " ; " : " ";
  }
  return out + " } ";
}

struct RunResult {
  double base_ttft;
  double cached_ttft;
  double agreement;
  int tokens;
};

RunResult run_case(PromptCacheEngine& engine, const std::string& prompt,
                   int max_new = 12) {
  GenerateOptions opts;
  opts.max_new_tokens = max_new;
  opts.stop_tokens.clear();
  const ServeResult cached = engine.serve(prompt, opts);
  const ServeResult baseline = engine.serve_baseline(prompt, opts);
  size_t agree = 0;
  const size_t n = std::min(cached.tokens.size(), baseline.tokens.size());
  for (size_t i = 0; i < n; ++i) {
    if (cached.tokens[i] == baseline.tokens[i]) ++agree;
  }
  return {baseline.ttft.total_ms(), cached.ttft.total_ms(),
          n == 0 ? 1.0 : static_cast<double>(agree) / n,
          baseline.prompt_tokens};
}

void add_row(TablePrinter& t, const std::string& name, const RunResult& r) {
  t.add_row({name, std::to_string(r.tokens),
             TablePrinter::fmt_ms(r.base_ttft),
             TablePrinter::fmt_ms(r.cached_ttft),
             TablePrinter::fmt_times(r.base_ttft / r.cached_ttft),
             TablePrinter::fmt(100.0 * r.agreement, 1) + " %"});
}

}  // namespace

int main() {
  const double scale = bench::context_scale();
  const int file_tokens = static_cast<int>(1500 * scale);
  bench::print_banner(
      "§5.6 use cases — code generation (Fig. 6), personalization (Fig. 7), "
      "parameterized prompts (Fig. 8)",
      "measured on this host, llama-tiny engine");

  const Tokenizer tokenizer(Vocab::basic_english());
  const Model model = Model::random(
      ModelConfig::llama_tiny(Vocab::basic_english().size(), 16384), 55);
  Rng rng(2024);

  TablePrinter table;
  table.set_header({"use case", "prompt tokens", "baseline TTFT",
                    "cached TTFT", "speedup", "output agreement"});

  // ---- Figure 6: code generation, one module per source file ----
  {
    std::string schema = "<schema name=\"codegen\">\n";
    for (const char* cls : {"unit", "map", "game", "player"}) {
      schema += "  <module name=\"" + std::string(cls) + "\">" +
                pml::escape_text(code_like_text(cls, file_tokens, rng)) +
                "</module>\n";
    }
    schema += "</schema>\n";

    PromptCacheEngine engine(model, tokenizer);
    engine.load_schema(schema);
    pml::PromptBuilder prompt("codegen");
    prompt.import("unit").import("map").import("player");
    prompt.text("write a function to move the player on the map");
    add_row(table, "code generation (3 of 4 files)",
            run_case(engine, prompt.str()));
  }

  // ---- Figure 7: personalization, six trait categories in unions ----
  {
    const char* categories[] = {"grade",  "proficiency", "history",
                                "style",  "assessment",  "goal"};
    std::string schema = "<schema name=\"personal\">\n";
    schema += "  you recommend learning material for a student\n";
    for (const char* cat : categories) {
      schema += "  <union>\n";
      for (int t = 0; t < 5; ++t) {
        const std::string name =
            std::string(cat) + "-" + std::to_string(t);
        schema += "    <module name=\"" + name + "\">the student " +
                  std::string(cat) + " level is " + std::to_string(t) +
                  " " + code_like_text(name, file_tokens / 5, rng) +
                  "</module>\n";
      }
      schema += "  </union>\n";
    }
    schema += "</schema>\n";

    PromptCacheEngine engine(model, tokenizer);
    engine.load_schema(schema);
    pml::PromptBuilder prompt("personal");
    int pick = 0;
    for (const char* cat : categories) {
      prompt.import(std::string(cat) + "-" + std::to_string(pick++ % 5));
    }
    prompt.text("suggest the next thing to study");
    add_row(table, "personalization (6 unions x 5 traits)",
            run_case(engine, prompt.str()));
  }

  // ---- Figure 8: parameterized travel planner via the prompt-program DSL ----
  {
    pml::PromptProgram prog("travel");
    prog.text("you are a travel planner");
    prog.if_block("trip-plan", [&](pml::BlockBuilder& b) {
      b.text("plan a trip of");
      b.param("duration", 4);
      b.text("days to the place below");
      b.choose({{"miami", "miami : " + code_like_text("miami",
                                                      file_tokens / 2, rng)},
                {"maui", "maui : " + code_like_text("maui",
                                                    file_tokens / 2, rng)}});
    });

    PromptCacheEngine engine(model, tokenizer);
    engine.load_schema(prog.compile());
    pml::PromptBuilder prompt("travel");
    pml::ImportBuilder plan("trip-plan");
    plan.arg("duration", "3 days");
    plan.import(pml::ImportBuilder("maui"));
    prompt.import(plan);
    prompt.text("highlight the surf spots");
    add_row(table, "parameterized trip plan (param + union)",
            run_case(engine, prompt.str()));
  }

  table.print(std::cout);
  std::cout << "\nPaper reference (§5.6): ~4x TTFT improvement for "
               "multi-file code generation with identical output; similar "
               "latency benefits with negligible quality change for "
               "personalization and parameterized prompts.\n"
               "Note on agreement: with random-weight models greedy "
               "decoding is chaotic — one flipped token diverges the rest — "
               "so agreement is a harsh lower bound here. Semantic accuracy "
               "preservation is evaluated rigorously in bench_table1.\n";
  return 0;
}
