// Observability overhead + artifact bench. Three phases:
//
//   1. Overhead: one 4-worker shared-store server serves paired bursts
//      with tracing runtime-toggled OFF/ON (same binary, same warmed
//      caches). Burst wall time is scheduler-noisy at this scale (single
//      bursts swing tens of percent), so each rep measures an adjacent
//      OFF/ON pair — alternating which arm goes first to cancel drift —
//      and the overhead estimate is the median of the per-rep ON/OFF
//      ratios. The acceptance check is overhead <= 2%.
//
//   2. Trace shape: a fresh 4-worker private-store server runs with tracing
//      enabled from construction (private stores make every worker encode,
//      so each lane shows encode_module spans), then the collected spans
//      are checked for >= 4 worker lanes each nesting kv_concat and decode
//      inside a serve, and exported as obs_trace.json (Perfetto) +
//      obs_metrics.prom (Prometheus text).
//
//   3. Request-telemetry overhead under continuous batching: a batching
//      server serves paired bursts with the FULL telemetry stack
//      (tracing + request timelines + a 10 Hz metrics sampler + SLO
//      tracking) toggled OFF/ON, same pairing methodology as phase 1.
//      The acceptance check is overhead <= 2%; the final ON burst's
//      timelines are exported as obs_requests.jsonl (the input for
//      `trace_report --requests`).
//
// Writes BENCH_obs.json. PC_SMOKE=1 shrinks reps/requests for CI smoke
// runs; PC_REQUESTS/PC_REPS override directly.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/shared_module_store.h"
#include "eval/table.h"
#include "eval/workload.h"
#include "model/induction.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/request_timeline.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sys/server.h"

namespace {

using namespace pc;

constexpr int kModules = 8;
constexpr int kWorkers = 4;

std::string two(int i) {
  char buf[4];
  std::snprintf(buf, sizeof(buf), "%02d", i);
  return buf;
}

std::string build_schema() {
  std::ostringstream os;
  os << "<schema name=\"obsfacts\">\n";
  for (int i = 0; i < kModules; ++i) {
    os << "  <module name=\"d" << two(i) << "\">w" << two(i % 30) << " w"
       << two((i + 7) % 30) << " q" << two(i) << " a" << two(2 * i) << " a"
       << two(2 * i + 1) << " . w" << two((i + 13) % 30) << "</module>\n";
  }
  os << "</schema>";
  return os.str();
}

std::vector<std::string> build_prompts() {
  std::vector<std::string> prompts;
  for (int i = 0; i < kModules; ++i) {
    std::ostringstream os;
    os << "<prompt schema=\"obsfacts\">";
    for (int j = 0; j < 3; ++j) os << "<d" << two((i + j) % kModules) << "/>";
    os << " question: q" << two(i) << "</prompt>";
    prompts.push_back(os.str());
  }
  return prompts;
}

double run_burst(Server& server, const std::vector<std::string>& prompts,
                 const GenerateOptions& opts, int requests) {
  WallTimer timer;
  for (int i = 0; i < requests; ++i) {
    server.submit(prompts[static_cast<size_t>(i) % prompts.size()], opts);
  }
  (void)server.drain();
  return timer.elapsed_ms();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Whether `lane` has a span named `inner` strictly inside a span named
// `outer` (same thread; containment by timestamps).
bool has_nested(const obs::ThreadTrace& lane, const char* outer,
                const char* inner) {
  for (const auto& o : lane.events) {
    if (std::string_view(o.name) != outer) continue;
    for (const auto& e : lane.events) {
      if (std::string_view(e.name) != inner) continue;
      if (e.start_ns >= o.start_ns && e.end_ns <= o.end_ns) return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  setenv("PC_THREADS", "1", /*overwrite=*/0);  // as bench_server: no nesting
  const bool smoke = std::getenv("PC_SMOKE") != nullptr;

  bench::print_banner(
      "Observability overhead — tracing ON vs OFF, same binary",
      smoke ? "PC_SMOKE: reduced reps (shape check only)"
            : "runtime toggle, interleaved bursts, medians");

#if !PC_OBS_ENABLED
  std::cout << "built with PC_OBS=OFF: spans compile to no-ops; nothing to "
               "measure\n";
  return 0;
#else
  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 256});
  const std::string schema = build_schema();
  const std::vector<std::string> prompts = build_prompts();
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  opts.stop_tokens = {workload.stop_token()};

  // Bursts must be long enough that scheduler noise (workers timeslicing
  // on few cores) averages out under the per-rep ratio; 160 requests keeps
  // repeated full runs within ~1% of each other.
  const int requests =
      bench::env_int("PC_REQUESTS", smoke ? 8 : 160);
  const int reps = bench::env_int("PC_REPS", smoke ? 2 : 9);

  ServerConfig cfg;
  cfg.n_workers = kWorkers;
  cfg.queue_capacity = 16;
  cfg.schemas = {schema};

  // Phase 1: overhead. One server, caches warmed, tracing toggled per
  // burst. Rings are cleared before each ON burst so wrap never differs
  // between reps; per-rep OFF/ON pairs alternate order so slow drift
  // (frequency scaling, background load) cancels out of the ratio.
  std::vector<double> off_ms, on_ms, ratios;
  {
    obs::set_tracing(false);
    SharedModuleStore store(/*device=*/0, /*host=*/0);
    Server server(model, workload.tokenizer(), store, cfg);
    (void)run_burst(server, prompts, opts, requests);  // warmup: encode all
    (void)run_burst(server, prompts, opts, requests);  // warmup: steady state
    for (int r = 0; r < reps; ++r) {
      const auto burst_off = [&] {
        obs::set_tracing(false);
        return run_burst(server, prompts, opts, requests);
      };
      const auto burst_on = [&] {
        obs::clear_traces();
        obs::set_tracing(true);
        return run_burst(server, prompts, opts, requests);
      };
      double off, on;
      if (r % 2 == 0) {
        off = burst_off();
        on = burst_on();
      } else {
        on = burst_on();
        off = burst_off();
      }
      off_ms.push_back(off);
      on_ms.push_back(on);
      ratios.push_back(on / off);
    }
    obs::set_tracing(false);
  }
  const double off_median = median(off_ms);
  const double on_median = median(on_ms);
  const double overhead_pct = (median(ratios) - 1.0) * 100.0;

  TablePrinter table("burst wall time (" + std::to_string(requests) +
                     " requests, " + std::to_string(kWorkers) + " workers)");
  table.set_header({"tracing", "median", "best", "worst"});
  const auto row = [&](const char* name, std::vector<double> v) {
    std::sort(v.begin(), v.end());
    table.add_row({name, TablePrinter::fmt_ms(median(v)),
                   TablePrinter::fmt_ms(v.front()),
                   TablePrinter::fmt_ms(v.back())});
  };
  row("off", off_ms);
  row("on", on_ms);
  table.print(std::cout);
  std::cout << "tracing overhead: " << TablePrinter::fmt(overhead_pct, 2)
            << "% (threshold 2%)\n";

  // Phase 2: trace shape. Fresh private-store server traced from
  // construction, so every worker lane shows its own startup encodes.
  obs::clear_traces();
  obs::set_tracing(true);
  {
    Server server(model, workload.tokenizer(), cfg);
    (void)run_burst(server, prompts, opts, requests);
    server.stop();
  }
  obs::set_tracing(false);

  const auto traces = obs::collect_traces();
  int worker_lanes = 0;
  int lanes_nested = 0;       // serve containing kv_concat AND decode
  int lanes_with_encode = 0;  // encode_module anywhere on the lane
  size_t total_events = 0;
  for (const auto& lane : traces) {
    total_events += lane.events.size();
    // Lanes persist across servers (phase 1's workers left empty rings
    // after clear_traces); only lanes that recorded in phase 2 count.
    if (lane.events.empty()) continue;
    if (lane.name.rfind("worker", 0) != 0) continue;
    ++worker_lanes;
    if (has_nested(lane, "serve", "kv_concat") &&
        has_nested(lane, "serve", "decode")) {
      ++lanes_nested;
    }
    for (const auto& e : lane.events) {
      if (std::string_view(e.name) == "encode_module") {
        ++lanes_with_encode;
        break;
      }
    }
  }

  const bool trace_written = obs::write_perfetto_trace("obs_trace.json");
  obs::write_prometheus_file("obs_metrics.prom");
  const std::string prom = obs::prometheus_text();
  const bool prom_covers_stack =
      prom.find("pc_engine_serves_total") != std::string::npos &&
      prom.find("pc_store_hits_total") != std::string::npos &&
      prom.find("pc_server_completed_total") != std::string::npos;

  std::cout << "trace: " << traces.size() << " lanes (" << worker_lanes
            << " workers, " << lanes_nested << " with nested serve spans, "
            << lanes_with_encode << " with encode spans), " << total_events
            << " events, " << obs::dropped_events() << " dropped\n"
            << "wrote obs_trace.json (load in ui.perfetto.dev) and "
               "obs_metrics.prom\n";

  const bool overhead_ok = overhead_pct <= 2.0;
  const bool lanes_ok = worker_lanes >= 4 && lanes_nested >= 4 &&
                        lanes_with_encode >= 4 && trace_written;

  // Phase 3: full-telemetry overhead under continuous batching. The ON arm
  // pays for everything this PR adds at once: span tracing, per-request
  // timeline assembly (with annotations and module-miss attribution), SLO
  // tracking, and a 10 Hz background sampler over every pc_* family.
  std::vector<double> batch_off_ms, batch_on_ms, batch_ratios;
  uint64_t timelines_recorded = 0;
  bool reqlog_written = false;
  double slo_availability = 0;
  {
    obs::set_tracing(false);
    obs::set_request_telemetry(false);
    ServerConfig bcfg = cfg;
    bcfg.batching = true;
    bcfg.batch.max_batch = kWorkers;
    bcfg.slo.window_s = 3600;  // the whole run stays inside the window
    SharedModuleStore store(/*device=*/0, /*host=*/0);
    Server server(model, workload.tokenizer(), store, bcfg);
    obs::MetricsSampler sampler;  // 10 Hz, all families
    (void)run_burst(server, prompts, opts, requests);  // warmup: encode all
    (void)run_burst(server, prompts, opts, requests);  // warmup: steady state
    const auto burst_off = [&] {
      obs::set_tracing(false);
      obs::set_request_telemetry(false);
      sampler.stop();
      return run_burst(server, prompts, opts, requests);
    };
    const auto burst_on = [&] {
      obs::clear_traces();
      obs::set_tracing(true);
      obs::set_request_telemetry(true);
      sampler.start();
      return run_burst(server, prompts, opts, requests);
    };
    for (int r = 0; r < reps; ++r) {
      double off, on;
      if (r % 2 == 0) {
        off = burst_off();
        on = burst_on();
      } else {
        on = burst_on();
        off = burst_off();
      }
      batch_off_ms.push_back(off);
      batch_on_ms.push_back(on);
      batch_ratios.push_back(on / off);
    }
    // One final telemetry-on burst feeds the exported request log.
    obs::set_tracing(true);
    obs::set_request_telemetry(true);
    (void)run_burst(server, prompts, opts, requests);
    sampler.stop();
    obs::set_tracing(false);
    timelines_recorded = server.requests().recorded();
    reqlog_written = server.write_request_log("obs_requests.jsonl");
    slo_availability = server.slo_snapshot().availability;
  }
  const double batch_overhead_pct = (median(batch_ratios) - 1.0) * 100.0;
  std::cout << "batching full-telemetry overhead: "
            << TablePrinter::fmt(batch_overhead_pct, 2)
            << "% (threshold 2%); " << timelines_recorded
            << " timelines recorded, SLO availability "
            << TablePrinter::fmt(slo_availability * 100.0, 2) << "%\n"
            << "wrote obs_requests.jsonl (inspect with trace_report "
               "--requests)\n";
  const bool batch_overhead_ok = batch_overhead_pct <= 2.0;
  const bool requests_ok =
      reqlog_written && timelines_recorded >= static_cast<uint64_t>(requests);

  std::ofstream out("BENCH_obs.json");
  out << "{\n  \"provenance\": " << bench::provenance_json() << ",\n"
      << "  \"workers\": " << kWorkers << ",\n"
      << "  \"requests_per_burst\": " << requests << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"wall_ms_tracing_off_median\": "
      << TablePrinter::fmt(off_median, 2) << ",\n"
      << "  \"wall_ms_tracing_on_median\": " << TablePrinter::fmt(on_median, 2)
      << ",\n"
      << "  \"overhead_pct\": " << TablePrinter::fmt(overhead_pct, 2) << ",\n"
      << "  \"trace\": {\"lanes\": " << traces.size()
      << ", \"worker_lanes\": " << worker_lanes
      << ", \"lanes_with_nested_serve\": " << lanes_nested
      << ", \"lanes_with_encode_spans\": " << lanes_with_encode
      << ", \"events\": " << total_events
      << ", \"dropped\": " << obs::dropped_events() << "},\n"
      << "  \"wall_ms_batch_telemetry_off_median\": "
      << TablePrinter::fmt(median(batch_off_ms), 2) << ",\n"
      << "  \"wall_ms_batch_telemetry_on_median\": "
      << TablePrinter::fmt(median(batch_on_ms), 2) << ",\n"
      << "  \"batch_telemetry_overhead_pct\": "
      << TablePrinter::fmt(batch_overhead_pct, 2) << ",\n"
      << "  \"request_timelines_recorded\": " << timelines_recorded << ",\n"
      << "  \"slo_availability\": "
      << TablePrinter::fmt(slo_availability, 6) << ",\n"
      << "  \"checks\": {\n"
      << "    \"overhead_within_2pct\": " << (overhead_ok ? "true" : "false")
      << ",\n"
      << "    \"batch_telemetry_overhead_within_2pct\": "
      << (batch_overhead_ok ? "true" : "false") << ",\n"
      << "    \"request_log_written\": " << (requests_ok ? "true" : "false")
      << ",\n"
      << "    \"trace_has_4_worker_lanes_nested\": "
      << (lanes_ok ? "true" : "false") << ",\n"
      << "    \"prometheus_covers_engine_store_server\": "
      << (prom_covers_stack ? "true" : "false") << "\n"
      << "  }\n}\n";
  std::cout << "wrote BENCH_obs.json\n";
  return 0;
#endif  // PC_OBS_ENABLED
}
