// Shared helpers for the benchmark harnesses.
//
// Every bench binary prints paper-shaped tables to stdout and finishes in
// tens of seconds by default. Environment knobs:
//   PC_FULL=1      run at full paper scale (longer contexts, more samples)
//   PC_SCALE=x     override the context-scale factor for measured runs
//   PC_SAMPLES=n   override the per-dataset sample count
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "eval/table.h"
#include "eval/workload.h"
#include "obs/trace.h"
#include "sys/fault.h"

// Stamped by bench/CMakeLists.txt; fall back for non-bench includers.
#ifndef PC_GIT_SHA
#define PC_GIT_SHA "unknown"
#endif
#ifndef PC_BUILD_TYPE
#define PC_BUILD_TYPE "unknown"
#endif

namespace pc::bench {

inline bool full_mode() {
  const char* v = std::getenv("PC_FULL");
  return v != nullptr && std::string(v) != "0";
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

// Default context scale for measured (this-host) runs: PC_FULL uses the
// paper's LongBench-average ~5K contexts, the quick default shrinks them.
inline double context_scale() {
  return env_double("PC_SCALE", full_mode() ? 1.0 : 0.3);
}

inline int samples_per_dataset(int quick_default, int full_default) {
  return env_int("PC_SAMPLES", full_mode() ? full_default : quick_default);
}

// Figures subsample 8 datasets like the paper's body; PC_FULL runs the
// whole 21-dataset LongBench suite (the paper's appendix).
inline const std::vector<DatasetSpec>& figure_datasets() {
  return full_mode() ? DatasetSpec::longbench21() : DatasetSpec::longbench8();
}

inline void print_banner(const std::string& what, const std::string& note) {
  std::cout << "\n############################################################\n"
            << "# " << what << "\n";
  if (!note.empty()) std::cout << "# " << note << "\n";
  std::cout << "############################################################\n";
}

// Provenance block for BENCH_*.json: which commit/build/config produced the
// numbers, so the bench trajectory stays comparable across PRs. `indent` is
// the number of spaces before the closing key lines (the caller's JSON
// nesting depth).
inline std::string provenance_json(int indent = 2) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string inner(static_cast<size_t>(indent) + 2, ' ');
  const char* threads = std::getenv("PC_THREADS");
  std::string out = "{\n";
  out += inner + "\"git_sha\": \"" + PC_GIT_SHA + "\",\n";
  out += inner + "\"build_type\": \"" + PC_BUILD_TYPE + "\",\n";
  out += inner + "\"pc_threads\": \"" +
         (threads != nullptr ? threads : "unset") + "\",\n";
  out += inner + "\"obs_enabled\": ";
  out += (PC_OBS_ENABLED ? "true" : "false");
  out += ",\n";
  out += inner + "\"tracing\": ";
  out += (obs::tracing_enabled() ? "true" : "false");
  out += ",\n";
  // Module storage format the process defaults to (PC_KV_FORMAT): q8
  // numbers are not comparable to fp32 numbers, so the JSON must say which
  // one produced them.
  const char* kv_format = std::getenv("PC_KV_FORMAT");
  out += inner + "\"pc_kv_format\": \"" +
         (kv_format != nullptr ? kv_format : "fp32") + "\",\n";
  // Active fault-injection spec ("" when disabled): numbers produced under
  // injected faults must say so.
  out += inner + "\"pc_faults\": \"" + FaultInjector::global().spec() + "\"\n";
  out += pad + "}";
  return out;
}

}  // namespace pc::bench
