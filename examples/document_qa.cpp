// Document question answering with checkable answers — the paper's
// motivating long-context scenario (§1): a pool of documents is shared
// across many questions, so each document becomes a prompt module whose
// attention states are computed once.
//
// The model here is the hand-constructed induction-head transformer, which
// genuinely retrieves planted facts from its context, so you can see that
// Prompt Cache preserves answers — and watch the one case where it cannot
// (a fact split across two modules), plus the scaffold that repairs it.
#include <cstdio>

#include "core/engine.h"
#include "eval/workload.h"
#include "model/induction.h"

int main() {
  using namespace pc;

  // The workload owns a compact closed vocabulary ("q.." keys, "a.."
  // values, "w.." filler); the induction model is sized to it.
  AccuracyWorkload workload(2024);
  const Model model = make_induction_model(
      {workload.vocab().size(), AccuracyWorkload::kMaxSchemaPositions + 64});

  GenerateOptions options;
  options.max_new_tokens = 6;
  options.stop_tokens = {workload.stop_token()};

  // Three "documents", each with facts written as  key value value .
  const char* schema = R"(
    <schema name="library">
      <module name="doc-geo">
        w00 w01 q01 a10 a11 . w02 w03 q02 a12 a13 . w04
      </module>
      <module name="doc-med">
        w05 w06 q03 a14 a15 . w07 q04 a16 a17 . w08
      </module>
      <module name="doc-law">
        w09 w10 q05 a18 a19 . w11 w12
      </module>
    </schema>)";

  PromptCacheEngine engine(model, workload.tokenizer());
  engine.load_schema(schema);

  // Many questions against the same cached documents.
  const struct {
    const char* key;
    const char* expect;
  } questions[] = {
      {"q01", "a10 a11"}, {"q03", "a14 a15"}, {"q05", "a18 a19"},
      {"q02", "a12 a13"},
  };

  std::printf("%-8s %-12s %-12s %-10s %-10s\n", "query", "cached", "baseline",
              "ttft(ms)", "base(ms)");
  for (const auto& q : questions) {
    const std::string prompt =
        std::string("<prompt schema=\"library\">"
                    "<doc-geo/><doc-med/><doc-law/> question: ") +
        q.key + "</prompt>";
    const ServeResult cached = engine.serve(prompt, options);
    const ServeResult baseline = engine.serve_baseline(prompt, options);
    std::printf("%-8s %-12s %-12s %-10.2f %-10.2f   expected: %s\n", q.key,
                cached.text.c_str(), baseline.text.c_str(),
                cached.ttft.total_ms(), baseline.ttft.total_ms(), q.expect);
  }

  // A fact split across two modules: lost under caching, restored by a
  // scaffold (§3.3) that encodes the two parts with a shared attention span.
  const char* split_schema = R"(
    <schema name="split">
      <module name="part-a">w00 w01 w02 q09</module>
      <module name="part-b">a20 a21 . w03 w04</module>
    </schema>)";
  const char* split_prompt =
      R"(<prompt schema="split"><part-a/><part-b/> question: q09</prompt>)";

  std::printf("\nfact split across modules (answer should be: a20 a21)\n");
  {
    PromptCacheEngine plain(model, workload.tokenizer());
    plain.load_schema(split_schema);
    std::printf("  baseline          : %s\n",
                plain.serve_baseline(split_prompt, options).text.c_str());
    std::printf("  cached, no scaffold: %s   <- previous-token link severed\n",
                plain.serve(split_prompt, options).text.c_str());
  }
  {
    PromptCacheEngine scaffolded(model, workload.tokenizer());
    scaffolded.load_schema(split_schema);
    scaffolded.add_scaffold("split", {"part-a", "part-b"});
    std::printf("  cached, scaffolded : %s\n",
                scaffolded.serve(split_prompt, options).text.c_str());
  }
  return 0;
}
