// Multi-turn chat over a cached context: the documents' attention states
// are assembled once per session; every turn afterwards costs only its own
// tokens. The induction model makes the conversation checkable — including
// a fact the *user* teaches mid-conversation.
#include <cstdio>

#include "core/session.h"
#include "eval/workload.h"
#include "model/induction.h"

int main() {
  using namespace pc;

  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 384});
  PromptCacheEngine engine(model, workload.tokenizer());
  engine.load_schema(R"(
    <schema name="desk">
      <module name="manual">w00 w01 q01 a10 a11 . w02 q02 a12 a13 . w03</module>
      <module name="notes">w04 q03 a14 a15 . w05</module>
    </schema>)");

  GenerateOptions options;
  options.max_new_tokens = 5;
  options.stop_tokens = {workload.stop_token()};

  ChatSession session(engine, R"(
    <prompt schema="desk"><manual/><notes/></prompt>)",
                      /*wrap_turns=*/false);
  std::printf("session opened: %d context tokens assembled from cache\n\n",
              session.context_tokens());

  const struct {
    const char* label;
    const char* text;
  } turns[] = {
      {"ask about q01", "question: q01"},
      {"ask about q03", "question: q03"},
      {"teach a new fact", "w06 q09 a20 a21 . w07"},
      {"ask about the taught fact", "question: q09"},
  };

  for (const auto& turn : turns) {
    const ChatSession::TurnResult r = session.send(turn.text, options);
    std::printf("user  (%-26s): %s\n", turn.label, turn.text);
    std::printf("model (%5.2f ms, %2d in-tokens): %s\n\n", r.latency_ms,
                r.input_tokens, r.text.empty() ? "(ok)" : r.text.c_str());
  }

  std::printf("%d turns, %d total context tokens, %d positions left\n",
              session.turns(), session.context_tokens(),
              session.remaining_positions());
  return 0;
}
