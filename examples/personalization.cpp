// Feature-based personalization (paper §5.6.2, Figure 7): six trait
// categories, each a <union> of five mutually exclusive trait modules.
// A user profile is one module per category; all 30 trait descriptions are
// encoded once and any of the 5^6 profiles is assembled by memcpy.
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/engine.h"
#include "pml/prompt_builder.h"

int main() {
  using namespace pc;

  const Tokenizer tokenizer(Vocab::basic_english());
  const Model model = Model::random(
      ModelConfig::llama_tiny(Vocab::basic_english().size(), 16384), 21);
  PromptCacheEngine engine(model, tokenizer);

  const std::vector<std::string> categories = {
      "grade", "proficiency", "history", "style", "assessment", "goal"};

  std::string schema = "<schema name=\"tutor\">\n";
  schema += "you recommend what a student should learn next .\n";
  for (const auto& cat : categories) {
    schema += "<union>\n";
    for (int level = 0; level < 5; ++level) {
      schema += "  <module name=\"" + cat + "-" + std::to_string(level) +
                "\">the student " + cat + " level is " +
                std::to_string(level) +
                " . this changes how you should help them learn and what "
                "example to show . take it into account .</module>\n";
    }
    schema += "</union>\n";
  }
  schema += "</schema>\n";
  engine.load_schema(schema);

  std::printf("encoded %zu trait modules once (%s of attention states)\n\n",
              engine.store().size(),
              format_bytes(
                  static_cast<double>(
                      engine.store()
                          .usage(ModuleLocation::kDeviceMemory)
                          .used_bytes))
                  .c_str());

  GenerateOptions options;
  options.max_new_tokens = 12;

  const std::vector<std::vector<int>> profiles = {
      {0, 1, 2, 3, 4, 0}, {4, 4, 4, 4, 4, 4}, {2, 0, 1, 0, 3, 2}};

  std::printf("%-22s %10s %10s %8s\n", "profile", "cached", "baseline",
              "speedup");
  for (const auto& profile : profiles) {
    pml::PromptBuilder prompt("tutor");
    std::string label;
    for (size_t c = 0; c < categories.size(); ++c) {
      prompt.import(categories[c] + "-" + std::to_string(profile[c]));
      label += std::to_string(profile[c]);
    }
    prompt.text("suggest the next lesson for this student");

    const ServeResult cached = engine.serve(prompt.str(), options);
    const ServeResult baseline = engine.serve_baseline(prompt.str(), options);
    std::printf("%-22s %8.1fms %8.1fms %7.1fx\n", label.c_str(),
                cached.ttft.total_ms(), baseline.ttft.total_ms(),
                baseline.ttft.total_ms() / cached.ttft.total_ms());
  }

  // Two traits from the same category are exclusive by construction.
  pml::PromptBuilder conflicting("tutor");
  conflicting.import("grade-0");
  conflicting.import("grade-1");
  try {
    (void)engine.serve(conflicting.str(), options);
  } catch (const SchemaError& e) {
    std::printf("\nconflicting profile rejected as expected:\n  %s\n",
                e.what());
  }
  return 0;
}
