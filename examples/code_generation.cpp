// Code generation with source files as prompt modules (paper §5.6.1,
// Figure 6): each class of a small game project is one module; the user
// "imports" exactly the files a request needs, and the attention states of
// every file are computed once no matter how many requests follow.
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/engine.h"
#include "pml/prompt_builder.h"
#include "pml/xml.h"

namespace {

// A toy "source file" written with in-vocabulary words so it tokenizes
// compactly (token *values* don't matter for latency, structure does).
std::string source_file(const std::string& name, int repeats) {
  std::string body = "class " + name + " { ";
  for (int i = 0; i < repeats; ++i) {
    body +=
        "function update ( state ) { set value ; move point ; } "
        "function get ( name ) { find value ; } ";
  }
  return body + "}";
}

}  // namespace

int main() {
  using namespace pc;

  const Tokenizer tokenizer(Vocab::basic_english());
  const Model model = Model::random(
      ModelConfig::llama_tiny(Vocab::basic_english().size(), 16384), 7);
  PromptCacheEngine engine(model, tokenizer);

  // The project: four files, one module each.
  std::string schema = "<schema name=\"project\">\n";
  schema += "you help write game code . the project files follow .\n";
  for (const char* file : {"unit", "map", "game", "player"}) {
    schema += "<module name=\"" + std::string(file) + "\">" +
              pml::escape_text(source_file(file, 24)) + "</module>\n";
  }
  schema += "</schema>\n";
  engine.load_schema(schema);

  GenerateOptions options;
  options.max_new_tokens = 16;

  // Three requests touching different subsets of the project.
  const std::vector<std::pair<std::string, std::vector<std::string>>>
      requests = {
          {"write a function to move the player", {"player", "map"}},
          {"add a new unit to the game", {"unit", "game"}},
          {"show the player on the map", {"player", "map", "game"}},
      };

  std::printf("%-44s %-22s %10s %10s %8s\n", "request", "imports",
              "cached", "baseline", "speedup");
  for (const auto& [request, files] : requests) {
    pml::PromptBuilder prompt("project");
    std::string import_list;
    for (const auto& f : files) {
      prompt.import(f);
      import_list += f + " ";
    }
    prompt.text(request);

    const ServeResult cached = engine.serve(prompt.str(), options);
    const ServeResult baseline = engine.serve_baseline(prompt.str(), options);
    std::printf("%-44s %-22s %8.1fms %8.1fms %7.1fx\n", request.c_str(),
                import_list.c_str(), cached.ttft.total_ms(),
                baseline.ttft.total_ms(),
                baseline.ttft.total_ms() / cached.ttft.total_ms());
  }

  const auto& stats = engine.stats();
  std::printf(
      "\nmodules encoded once: %llu; serves: %llu; store holds %zu entries "
      "(%s)\n",
      static_cast<unsigned long long>(stats.modules_encoded),
      static_cast<unsigned long long>(stats.serves), engine.store().size(),
      format_bytes(static_cast<double>(
                       engine.store().usage(ModuleLocation::kDeviceMemory)
                           .used_bytes))
          .c_str());
  return 0;
}
