// The serving-lifecycle walkthrough: what a production deployment of
// Prompt Cache does around the core algorithm.
//
//   1. offline: encode a schema's modules and persist them to disk;
//   2. "restart": a fresh engine loads the encoded states instead of
//      re-encoding (zero warmup);
//   3. steady state: zero-copy serving with a pinned system module and
//      union-sibling prefetch;
//   4. observability: TTFT percentiles and store statistics.
#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "core/engine.h"
#include "eval/workload.h"
#include "model/induction.h"
#include "pml/prompt_builder.h"

int main() {
  using namespace pc;

  AccuracyWorkload workload(99);
  const Model model = make_induction_model(
      {workload.vocab().size(), AccuracyWorkload::kMaxSchemaPositions + 64});

  const char* schema = R"(
    <schema name="support">
      <module name="sys">w00 w01 w02 w03 w04</module>
      <union>
        <module name="lang-en">w05 q01 a10 a11 . w06</module>
        <module name="lang-de">w07 q01 a12 a13 . w08</module>
        <module name="lang-fr">w09 q01 a14 a15 . w10</module>
      </union>
      <module name="faq">w11 q02 a16 a17 . w12 q03 a18 . w13</module>
    </schema>)";
  const std::string snapshot = "/tmp/pc_support_modules.bin";

  // ---- phase 1: offline encoding + persistence ----
  {
    PromptCacheEngine offline(model, workload.tokenizer());
    offline.load_schema(schema);
    const size_t saved = offline.save_modules(snapshot);
    std::printf("offline: encoded %llu modules, persisted %zu records (%s)\n",
                static_cast<unsigned long long>(
                    offline.stats().modules_encoded),
                saved,
                format_bytes(static_cast<double>(
                    offline.store()
                        .usage(ModuleLocation::kDeviceMemory)
                        .used_bytes))
                    .c_str());
  }

  // ---- phase 2: restart without re-encoding ----
  EngineConfig cfg;
  cfg.eager_encode = false;          // schema loads metadata only
  cfg.zero_copy = true;              // borrow module rows, copy nothing
  cfg.prefetch_union_siblings = true;
  PromptCacheEngine engine(model, workload.tokenizer(), cfg);
  engine.load_schema(schema);
  const size_t loaded = engine.load_modules(snapshot);
  engine.pin_module("support", "sys");  // the system prompt never evicts
  std::printf("restart: restored %zu modules from disk, re-encoded %llu\n\n",
              loaded,
              static_cast<unsigned long long>(
                  engine.stats().modules_encoded));

  // ---- phase 3: steady-state traffic ----
  GenerateOptions options;
  options.max_new_tokens = 4;
  options.stop_tokens = {workload.stop_token()};

  const struct Request {
    const char* lang;
    const char* key;
  } traffic[] = {
      {"lang-en", "q01"}, {"lang-de", "q01"}, {"lang-fr", "q01"},
      {"lang-en", "q02"}, {"lang-de", "q03"}, {"lang-en", "q01"},
  };
  std::printf("%-10s %-6s %-10s %10s %14s\n", "variant", "key", "answer",
              "ttft", "zero-copied");
  for (const Request& req : traffic) {
    pml::PromptBuilder prompt("support");
    prompt.import("sys").import(req.lang).import("faq");
    prompt.text(std::string("question: ") + req.key);
    const ServeResult r = engine.serve(prompt.str(), options);
    std::printf("%-10s %-6s %-10s %8.2fms %14s\n", req.lang, req.key,
                r.text.c_str(), r.ttft.total_ms(),
                format_bytes(static_cast<double>(r.ttft.bytes_zero_copy))
                    .c_str());
  }

  // ---- phase 4: observability ----
  const auto& stats = engine.stats();
  std::printf("\nTTFT:  %s\n", engine.cached_ttft_histogram().summary().c_str());
  std::printf(
      "store: %zu entries, %llu hits / %llu misses, %llu evictions, "
      "%llu sibling prefetches\n",
      engine.store().size(),
      static_cast<unsigned long long>(engine.store().stats().hits),
      static_cast<unsigned long long>(engine.store().stats().misses),
      static_cast<unsigned long long>(engine.store().stats().evictions),
      static_cast<unsigned long long>(stats.sibling_prefetches));
  std::remove(snapshot.c_str());
  return 0;
}
