// Retrieval-augmented generation on top of Prompt Cache (paper §6):
// "Prompt Cache can directly accelerate in-context RAG methods, where the
// information retrieval system basically serves as a database of prompt
// modules."
//
// A BM25 index selects which document modules each question imports; the
// documents' attention states were encoded once at startup, so every
// request costs retrieval + a short uncached suffix instead of a full
// prefill. The model is the induction-head transformer, so the planted
// answers are actually retrieved and checkable.
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "eval/retriever.h"
#include "model/induction.h"
#include "pml/prompt_builder.h"

int main() {
  using namespace pc;

  // Document pool: topical words for the retriever, plus planted facts
  // ("qNN aNN aNN .") for the model to copy out.
  const struct Doc {
    const char* name;
    const char* text;
  } docs[] = {
      {"doc-beach",
       "the beach city guide . surf and warm sea near the sand . "
       "q01 a10 a11 . people visit the water at night"},
      {"doc-mountain",
       "the mountain island guide . a long walk with a high view . "
       "q02 a12 a13 . start early and carry water"},
      {"doc-market",
       "the old market guide . food and paper and stone goods . "
       "q03 a14 a15 . the best day is the first day"},
      {"doc-museum",
       "the city museum guide . old art and a famous book room . "
       "q04 a16 a17 . open every day but the last"},
  };

  // A closed vocabulary covering the corpus (the induction model's width
  // scales with vocab size, so we build exactly what we need).
  std::vector<std::string> pieces = {
      "question:", ".", "the",  "beach",  "city",   "guide", "surf",
      "and",       "warm", "sea",   "near",   "sand",   "people", "visit",
      "water",     "at",   "night", "mountain", "island", "long", "walk",
      "with",      "a",    "high",  "view",   "start",  "early", "carry",
      "old",       "market", "food", "paper", "stone",  "goods", "best",
      "day",       "is",   "first", "museum", "art",    "famous", "book",
      "room",      "open", "every", "but",    "last",   "about", "tell",
      "me",        "what", "should", "we",    "see",
  };
  for (int i = 1; i <= 4; ++i) {
    char q[8];
    std::snprintf(q, sizeof(q), "q%02d", i);
    pieces.emplace_back(q);
  }
  for (int i = 10; i <= 17; ++i) {
    char a[8];
    std::snprintf(a, sizeof(a), "a%02d", i);
    pieces.emplace_back(a);
  }
  const Vocab vocab = Vocab::from_pieces(pieces, /*byte_fallback=*/false);
  const Tokenizer tokenizer(vocab);
  const Model model = make_induction_model({vocab.size(), 512});

  // Index the pool and publish it as a schema: one module per document.
  Bm25Index index;
  std::string schema = "<schema name=\"rag\">\n";
  for (const Doc& doc : docs) {
    index.add_document(doc.name, doc.text);
    schema += "  <module name=\"" + std::string(doc.name) + "\">" +
              doc.text + "</module>\n";
  }
  schema += "</schema>\n";
  index.finalize();

  PromptCacheEngine engine(model, tokenizer);
  engine.load_schema(schema);  // all documents encoded once, here
  std::printf("indexed and encoded %d documents\n\n",
              index.document_count());

  GenerateOptions options;
  options.max_new_tokens = 4;
  options.stop_tokens = {*vocab.find_piece(".")};

  const struct Query {
    const char* text;    // natural-ish query for BM25
    const char* key;     // the fact being asked about
    const char* expect;
  } queries[] = {
      {"tell me about surf near the warm sea", "q01", "a10 a11"},
      {"what about the long mountain walk", "q02", "a12 a13"},
      {"food at the old market", "q03", "a14 a15"},
      {"the famous museum art room", "q04", "a16 a17"},
  };

  std::printf("%-42s %-12s %-10s %-10s %s\n", "query", "retrieved", "answer",
              "ttft", "");
  for (const Query& q : queries) {
    const auto hits = index.query(q.text, 2);
    pml::PromptBuilder prompt("rag");
    std::string retrieved;
    for (const auto& hit : hits) {
      prompt.import(index.document_name(hit.doc));
      retrieved += index.document_name(hit.doc).substr(4) + " ";
    }
    prompt.text(std::string(q.text) + " question: " + q.key);

    const ServeResult r = engine.serve(prompt.str(), options);
    const bool ok = r.text == q.expect;
    std::printf("%-42s %-12s %-10s %7.2fms %s\n", q.text, retrieved.c_str(),
                r.text.c_str(), r.ttft.total_ms(),
                ok ? "(correct)" : "(MISMATCH)");
  }

  std::printf("\ntelemetry: cached TTFT %s\n",
              engine.cached_ttft_histogram().summary().c_str());
  return 0;
}
