// Quickstart: the smallest end-to-end Prompt Cache program.
//
//   1. build a model and an engine;
//   2. load a PML schema — its modules are encoded once;
//   3. serve prompts derived from the schema — cached modules are reused,
//      only the new text is computed;
//   4. compare against the regular KV-Cache baseline.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"

int main() {
  using namespace pc;

  // A small random-weight Llama-style model over the built-in vocabulary.
  // (Latency behaviour is architecture-shaped, not weight-shaped; see the
  // document_qa example for a model with checkable outputs.)
  const Tokenizer tokenizer(Vocab::basic_english());
  const Model model = Model::random(
      ModelConfig::llama_tiny(Vocab::basic_english().size(), 8192), 42);

  PromptCacheEngine engine(model, tokenizer);

  // The schema declares reusable prompt modules. Loading it precomputes
  // and caches each module's attention states at its schema position.
  engine.load_schema(R"(
    <schema name="assistant">
      you are a helpful assistant . answer with care .
      <module name="guide">
        the city guide : the beach is near the river . the old town has a
        famous market . people like to walk along the water at night .
      </module>
      <module name="rules">
        keep the answer short . do not talk about the weather .
      </module>
    </schema>)");

  GenerateOptions options;
  options.max_new_tokens = 12;

  // A prompt imports modules by name and adds fresh text. Serving it reuses
  // the cached attention states; only "what should we see ..." is computed.
  const char* prompt = R"(
    <prompt schema="assistant">
      <guide/>
      <rules/>
      what should we see first ?
    </prompt>)";

  const ServeResult cached = engine.serve(prompt, options);
  const ServeResult baseline = engine.serve_baseline(prompt, options);

  std::printf("prompt tokens          : %d (%d cached, %d computed)\n",
              cached.prompt_tokens, cached.ttft.cached_tokens,
              cached.ttft.uncached_tokens);
  std::printf("TTFT with Prompt Cache : %.2f ms (%.2f ms module memcpy)\n",
              cached.ttft.total_ms(), cached.ttft.retrieve_ms);
  std::printf("TTFT with KV Cache     : %.2f ms\n", baseline.ttft.total_ms());
  std::printf("speedup                : %.1fx\n",
              baseline.ttft.total_ms() / cached.ttft.total_ms());
  std::printf("generated (cached)     : %s\n", cached.text.c_str());
  std::printf("generated (baseline)   : %s\n", baseline.text.c_str());

  // Serving again hits the module cache — no re-encoding happens.
  const ServeResult again = engine.serve(prompt, options);
  std::printf("second serve TTFT      : %.2f ms (encode %.2f ms)\n",
              again.ttft.total_ms(), again.encode_ms);
  return 0;
}
