// Parameterized prompts (paper §5.6.3, Figure 8), authored through the
// prompt-program DSL (§3.2.4) instead of hand-written PML: a travel-plan
// template with a runtime `duration` argument and a union of destinations.
// Every variant reuses the same cached modules; only the argument tokens
// and the trailing request are computed at serve time.
#include <cstdio>

#include "core/engine.h"
#include "pml/prompt_builder.h"
#include "pml/prompt_program.h"

int main() {
  using namespace pc;

  const Tokenizer tokenizer(Vocab::basic_english());
  const Model model = Model::random(
      ModelConfig::llama_tiny(Vocab::basic_english().size(), 8192), 11);
  PromptCacheEngine engine(model, tokenizer);

  // The prompt program: if/choose/param structures compile to PML.
  pml::PromptProgram program("travel");
  program.text("you are a travel agent . plan with care .");
  program.if_block("trip-plan", [](pml::BlockBuilder& b) {
    b.text("plan a trip of");
    b.param("duration", 4);
    b.text("days . the place is described below .");
    b.choose(
        {{"miami",
          "miami : a beach city . people surf near the water and visit the "
          "old market . the food is great ."},
         {"maui",
          "maui : an island . the mountain walk is famous and the sea is "
          "warm . best to start early ."}});
  });

  const std::string schema_pml = program.compile();
  std::printf("generated schema PML:\n%s\n", schema_pml.c_str());
  engine.load_schema(schema_pml);

  GenerateOptions options;
  options.max_new_tokens = 12;

  const struct {
    const char* place;
    const char* duration;
    const char* request;
  } variants[] = {
      {"miami", "3 days", "highlight the surf spots"},
      {"maui", "3 days", "highlight the mountain walk"},
      {"miami", "10 days", "plan a family visit"},
      {"maui", "2 days", "what should we not miss ?"},
  };

  std::printf("%-8s %-9s %-28s %10s %10s %8s\n", "place", "duration",
              "request", "cached", "baseline", "speedup");
  for (const auto& v : variants) {
    pml::ImportBuilder plan("trip-plan");
    plan.arg("duration", v.duration);
    plan.import(pml::ImportBuilder(v.place));
    pml::PromptBuilder prompt("travel");
    prompt.import(plan);
    prompt.text(v.request);

    const ServeResult cached = engine.serve(prompt.str(), options);
    const ServeResult baseline = engine.serve_baseline(prompt.str(), options);
    std::printf("%-8s %-9s %-28s %8.1fms %8.1fms %7.1fx\n", v.place,
                v.duration, v.request, cached.ttft.total_ms(),
                baseline.ttft.total_ms(),
                baseline.ttft.total_ms() / cached.ttft.total_ms());
  }

  // Arguments longer than the parameter budget are rejected up front.
  pml::ImportBuilder bad("trip-plan");
  bad.arg("duration", "one two three four five six");
  pml::PromptBuilder bad_prompt("travel");
  bad_prompt.import(bad);
  try {
    (void)engine.serve(bad_prompt.str(), options);
  } catch (const SchemaError& e) {
    std::printf("\nover-budget argument rejected as expected:\n  %s\n",
                e.what());
  }
  return 0;
}
