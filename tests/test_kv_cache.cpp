// Unit tests for the KV cache: appends, range copies, overwrite (parameter
// substitution), concatenation policies and their reallocation stats.
#include <gtest/gtest.h>

#include "kv/kv_cache.h"

namespace pc {
namespace {

KVCache filled_cache(int n_layers, int kv_dim, int n_tokens, float base,
                     ConcatPolicy policy = ConcatPolicy::kBuffered) {
  KVCache c(n_layers, kv_dim, policy);
  std::vector<int> pos(static_cast<size_t>(n_tokens));
  for (int i = 0; i < n_tokens; ++i) pos[static_cast<size_t>(i)] = 100 + i;
  c.append_tokens(pos);
  for (int l = 0; l < n_layers; ++l) {
    for (int t = 0; t < n_tokens; ++t) {
      for (int e = 0; e < kv_dim; ++e) {
        c.k_row(l, t)[e] = base + l * 100 + t * 10 + e;
        c.v_row(l, t)[e] = -(base + l * 100 + t * 10 + e);
      }
    }
  }
  return c;
}

TEST(KVCache, AppendTokensTracksPositions) {
  KVCache c(2, 4);
  const std::vector<int> pos = {5, 6, 9};
  const int first = c.append_tokens(pos);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.pos_id(2), 9);
  const std::vector<int> more = {20};
  EXPECT_EQ(c.append_tokens(more), 3);
  EXPECT_EQ(c.size(), 4);
}

TEST(KVCache, RowsAreZeroInitializedAndWritable) {
  KVCache c(1, 3);
  const std::vector<int> pos = {0, 1};
  c.append_tokens(pos);
  EXPECT_FLOAT_EQ(c.k_row(0, 1)[2], 0.0f);
  c.k_row(0, 1)[2] = 7.0f;
  EXPECT_FLOAT_EQ(c.k_row(0, 1)[2], 7.0f);
}

TEST(KVCache, AppendCopyPreservesPayloadAndPositions) {
  const KVCache src = filled_cache(2, 4, 3, 1000.0f);
  KVCache dst(2, 4);
  const int first = dst.append_copy(src);
  EXPECT_EQ(first, 0);
  ASSERT_EQ(dst.size(), 3);
  for (int l = 0; l < 2; ++l) {
    for (int t = 0; t < 3; ++t) {
      EXPECT_EQ(dst.pos_id(t), src.pos_id(t));
      for (int e = 0; e < 4; ++e) {
        EXPECT_FLOAT_EQ(dst.k_row(l, t)[e], src.k_row(l, t)[e]);
        EXPECT_FLOAT_EQ(dst.v_row(l, t)[e], src.v_row(l, t)[e]);
      }
    }
  }
}

TEST(KVCache, AppendRangeCopiesSubsetOnly) {
  const KVCache src = filled_cache(1, 2, 5, 0.0f);
  KVCache dst(1, 2);
  dst.append_range(src, 1, 4);
  ASSERT_EQ(dst.size(), 3);
  EXPECT_EQ(dst.pos_id(0), src.pos_id(1));
  EXPECT_FLOAT_EQ(dst.k_row(0, 0)[0], src.k_row(0, 1)[0]);
  EXPECT_FLOAT_EQ(dst.v_row(0, 2)[1], src.v_row(0, 3)[1]);
  EXPECT_THROW(dst.append_range(src, 3, 6), ContractViolation);
}

TEST(KVCache, GeometryMismatchRejected) {
  const KVCache src = filled_cache(2, 4, 2, 0.0f);
  KVCache wrong_layers(3, 4);
  EXPECT_THROW(wrong_layers.append_copy(src), ContractViolation);
  KVCache wrong_dim(2, 8);
  EXPECT_THROW(wrong_dim.append_copy(src), ContractViolation);
}

TEST(KVCache, OverwriteFromReplacesRowsAndPositions) {
  KVCache dst = filled_cache(1, 2, 4, 0.0f);
  const KVCache src = filled_cache(1, 2, 2, 500.0f);
  dst.overwrite_from(/*dst_first=*/1, src, /*src_first=*/0, /*count=*/2);
  EXPECT_FLOAT_EQ(dst.k_row(0, 1)[0], src.k_row(0, 0)[0]);
  EXPECT_FLOAT_EQ(dst.k_row(0, 2)[1], src.k_row(0, 1)[1]);
  EXPECT_EQ(dst.pos_id(1), src.pos_id(0));
  // Untouched rows keep their payload.
  EXPECT_FLOAT_EQ(dst.k_row(0, 0)[0], 0.0f + 0 * 10 + 0);
  EXPECT_THROW(dst.overwrite_from(3, src, 0, 2), ContractViolation);
}

TEST(KVCache, TruncateRollsBack) {
  KVCache c = filled_cache(1, 2, 5, 0.0f);
  c.truncate(2);
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(static_cast<int>(c.pos_ids().size()), 2);
  EXPECT_THROW(c.truncate(3), ContractViolation);
}

TEST(KVCache, ReserveAvoidsReallocation) {
  KVCache c(2, 8, ConcatPolicy::kBuffered);
  c.reserve(100);
  const uint64_t reallocs_after_reserve = c.stats().reallocations;
  for (int i = 0; i < 100; ++i) {
    const std::vector<int> pos = {i};
    c.append_tokens(pos);
  }
  EXPECT_EQ(c.stats().reallocations, reallocs_after_reserve);
}

TEST(KVCache, BufferedPolicyAmortizesGrowth) {
  KVCache buffered(1, 4, ConcatPolicy::kBuffered);
  KVCache naive(1, 4, ConcatPolicy::kNaive);
  for (int i = 0; i < 128; ++i) {
    const std::vector<int> pos = {i};
    buffered.append_tokens(pos);
    naive.append_tokens(pos);
  }
  // PyTorch-style exact-fit concat reallocates every append; the buffered
  // operator reallocates O(log n) times and moves far fewer bytes.
  EXPECT_LT(buffered.stats().reallocations, 20u);
  EXPECT_GT(naive.stats().reallocations, 200u);
  EXPECT_LT(buffered.stats().bytes_moved, naive.stats().bytes_moved / 4);
}

TEST(KVCache, PayloadBytesAccounting) {
  KVCache c(2, 4);
  const std::vector<int> pos = {0, 1, 2};
  c.append_tokens(pos);
  // 3 tokens * (K+V) * 2 layers * 4 floats * 4 bytes
  EXPECT_EQ(c.payload_bytes(), 3u * 2 * 2 * 4 * 4);
}

TEST(KVCache, InvalidAccessesThrow) {
  KVCache c(1, 2);
  EXPECT_THROW(c.k_row(0, 0), ContractViolation);  // empty
  const std::vector<int> pos = {0};
  c.append_tokens(pos);
  EXPECT_THROW(c.k_row(1, 0), ContractViolation);  // bad layer
  EXPECT_THROW(c.pos_id(1), ContractViolation);
  EXPECT_THROW(KVCache(0, 2), ContractViolation);
}

}  // namespace
}  // namespace pc
