// Unit tests for the hardware simulation layer: per-token KV memory
// (reproducing Table 2's published numbers exactly), FLOPs accounting, and
// the qualitative properties the TTFT model must exhibit (quadratic
// baseline vs linear cached cost, tier ordering).
#include <gtest/gtest.h>

#include <limits>

#include "sys/device_model.h"
#include "sys/memory_tier.h"
#include "sys/model_spec.h"

namespace pc {
namespace {

// Table 2 of the paper: MB per cached token at fp16. Our specs must
// reproduce the published numbers from real architecture dimensions.
TEST(ModelSpec, Table2MemoryPerToken) {
  const struct {
    const char* name;
    double mb;
    double tol;
  } expected[] = {
      {"BERT", 0.03, 0.01},        {"Falcon 1B", 0.18, 0.01},
      {"Llama 7B", 0.50, 0.01},    {"Llama 13B", 0.78, 0.01},
      {"MPT 30B", 1.31, 0.01},     {"Falcon 40B", 1.87, 0.01},
      {"Llama 70B", 2.5, 0.13},    {"Falcon 180B", 4.53, 0.01},
  };
  for (const auto& e : expected) {
    const ModelSpec& spec = find_spec(e.name);
    const double mb =
        static_cast<double>(spec.kv_bytes_per_token()) / (1024.0 * 1024.0);
    EXPECT_NEAR(mb, e.mb, e.tol) << e.name;
  }
}

TEST(ModelSpec, UnknownNameThrows) {
  EXPECT_THROW(find_spec("GPT-9"), Error);
  EXPECT_EQ(model_zoo().size(), 8u);
}

TEST(ModelSpec, ParameterCountsAreRoughlyRight) {
  EXPECT_NEAR(find_spec("Llama 7B").approx_params() / 1e9, 6.7, 0.8);
  EXPECT_NEAR(find_spec("Llama 13B").approx_params() / 1e9, 13.0, 1.5);
  // The 70B spec deliberately uses MHA (Table 2's assumption), which
  // inflates attention parameters over the real GQA model (~69B -> ~78B).
  EXPECT_NEAR(find_spec("Llama 70B").approx_params() / 1e9, 78.0, 9.0);
}

TEST(Flops, PrefillIsSuperlinearInTokens) {
  const ModelSpec& spec = find_spec("Llama 7B");
  const double f1 = prefill_flops(spec, 1000);
  const double f2 = prefill_flops(spec, 2000);
  const double f4 = prefill_flops(spec, 4000);
  EXPECT_GT(f2, 2.0 * f1);           // superlinear
  EXPECT_GT(f4 - f2, 2.0 * (f2 - f1));  // convex (quadratic term)
}

TEST(Flops, ExtendMuchCheaperThanPrefill) {
  const ModelSpec& spec = find_spec("Llama 7B");
  const double full = prefill_flops(spec, 5000);
  const double extend = extend_flops(spec, 5000, 50);
  EXPECT_LT(extend, full / 20.0);
  // Decode step cost grows with context length (attention over past).
  EXPECT_GT(extend_flops(spec, 8000, 1), extend_flops(spec, 1000, 1));
}

TEST(DeviceModel, BaselineTtftGrowsSuperlinearly) {
  // Beyond the short-sequence efficiency ramp, the quadratic attention
  // term makes baseline TTFT grow faster than linearly.
  const ModelSpec& spec = find_spec("Llama 7B");
  const auto& hw = HardwareProfile::intel_i9_13900k();
  const double t2k = estimate_baseline_ttft(hw, spec, 2000).total();
  const double t16k = estimate_baseline_ttft(hw, spec, 16000).total();
  EXPECT_GT(t16k, 8.0 * t2k * 1.05);
}

TEST(DeviceModel, CachedTtftGrowsLinearly) {
  const ModelSpec& spec = find_spec("Llama 7B");
  const auto& hw = HardwareProfile::rtx4090();
  const double t1 = estimate_cached_ttft(hw, spec, 1000, 1,
                                         ModuleLocation::kHostMemory)
                        .transfer_s;
  const double t8 = estimate_cached_ttft(hw, spec, 8000, 1,
                                         ModuleLocation::kHostMemory)
                        .transfer_s;
  EXPECT_NEAR(t8 / t1, 8.0, 0.5);  // linear in cached bytes
}

TEST(DeviceModel, CachedBeatsBaselineAtPaperScale) {
  const ModelSpec& spec = find_spec("Llama 7B");
  for (const HardwareProfile* hw : HardwareProfile::all()) {
    const double base = estimate_baseline_ttft(*hw, spec, 5000).total();
    const double cached =
        estimate_cached_ttft(*hw, spec, 4950, 50,
                             ModuleLocation::kHostMemory)
            .total();
    EXPECT_GT(base / cached, 1.5) << hw->name;
  }
}

TEST(DeviceModel, DeviceTierIsFasterThanHostTierOnGpu) {
  const ModelSpec& spec = find_spec("Llama 7B");
  const auto& hw = HardwareProfile::a100();
  const double host =
      estimate_cached_ttft(hw, spec, 5000, 50, ModuleLocation::kHostMemory)
          .total();
  const double device =
      estimate_cached_ttft(hw, spec, 5000, 50, ModuleLocation::kDeviceMemory)
          .total();
  EXPECT_LT(device, host);
}

TEST(DeviceModel, CpuProfilesForbidDeviceTier) {
  const auto& cpu = HardwareProfile::intel_i9_13900k();
  EXPECT_THROW(
      estimate_memcpy_s(cpu, 1 << 20, ModuleLocation::kDeviceMemory),
      ContractViolation);
  EXPECT_GT(estimate_memcpy_s(cpu, 1 << 30, ModuleLocation::kHostMemory), 0.0);
}

TEST(DeviceModel, DecodeStepIsContextDependentButModest) {
  const ModelSpec& spec = find_spec("Llama 7B");
  const auto& hw = HardwareProfile::rtx4090();
  const double short_ctx = estimate_decode_step_s(hw, spec, 100);
  const double long_ctx = estimate_decode_step_s(hw, spec, 8000);
  EXPECT_GE(long_ctx, short_ctx);
  EXPECT_LT(long_ctx, 0.2);  // tens of ms per token, as §5.4 reports
}

TEST(TierAllocator, ChargesAndCreditsWithinCapacity) {
  TierAllocator tiers(/*host=*/100, /*device=*/10);
  EXPECT_TRUE(tiers.can_fit(ModuleLocation::kDeviceMemory, 10));
  tiers.charge(ModuleLocation::kDeviceMemory, 10);
  EXPECT_FALSE(tiers.can_fit(ModuleLocation::kDeviceMemory, 1));
  tiers.credit(ModuleLocation::kDeviceMemory, 10);
  EXPECT_TRUE(tiers.can_fit(ModuleLocation::kDeviceMemory, 10));
  EXPECT_THROW(tiers.charge(ModuleLocation::kDeviceMemory, 11),
               ContractViolation);
  EXPECT_THROW(tiers.credit(ModuleLocation::kHostMemory, 1),
               ContractViolation);
}

TEST(TierAllocator, ZeroCapacityMeansUnlimited) {
  TierAllocator tiers(0, 0);
  EXPECT_TRUE(tiers.can_fit(ModuleLocation::kHostMemory, size_t{1} << 60));
}

TEST(TierUsage, UnlimitedPredicateSpellsOutTheSentinel) {
  TierUsage unlimited;  // capacity 0
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_EQ(unlimited.free_bytes(), std::numeric_limits<size_t>::max());

  TierUsage limited;
  limited.capacity_bytes = 100;
  limited.used_bytes = 30;
  EXPECT_FALSE(limited.unlimited());
  EXPECT_EQ(limited.free_bytes(), 70u);
  limited.used_bytes = 100;
  EXPECT_EQ(limited.free_bytes(), 0u);
}

TEST(TierUsage, CanFitNearSizeMaxDoesNotWrapAround) {
  // The historical bug shape: `used + bytes <= capacity` wraps for
  // requests near SIZE_MAX and admits them into a full tier. The headroom
  // form must reject them.
  TierAllocator tiers(/*host=*/100, /*device=*/0);
  tiers.charge(ModuleLocation::kHostMemory, 60);
  EXPECT_FALSE(tiers.can_fit(ModuleLocation::kHostMemory,
                             std::numeric_limits<size_t>::max()));
  EXPECT_FALSE(tiers.can_fit(ModuleLocation::kHostMemory,
                             std::numeric_limits<size_t>::max() - 59));
  EXPECT_TRUE(tiers.can_fit(ModuleLocation::kHostMemory, 40));
  EXPECT_FALSE(tiers.can_fit(ModuleLocation::kHostMemory, 41));
  // The unlimited tier admits anything, including SIZE_MAX.
  EXPECT_TRUE(tiers.can_fit(ModuleLocation::kDeviceMemory,
                            std::numeric_limits<size_t>::max()));
}

}  // namespace
}  // namespace pc
