// Transformer engine tests: KV-cache exactness, discontinuous position IDs,
// block-masked prefill, GQA, and generation — across all architecture
// families (parameterized).
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "model/induction.h"
#include "model/model.h"
#include "tensor/ops.h"

namespace pc {
namespace {

constexpr int kVocab = 64;

ModelConfig config_for(ArchFamily family) {
  switch (family) {
    case ArchFamily::kLlama:
      return ModelConfig::llama_tiny(kVocab, 256);
    case ArchFamily::kMpt:
      return ModelConfig::mpt_tiny(kVocab, 256);
    case ArchFamily::kFalcon:
      return ModelConfig::falcon_tiny(kVocab, 256);
    case ArchFamily::kGpt2:
      return ModelConfig::gpt2_tiny(kVocab, 256);
  }
  return ModelConfig::llama_tiny(kVocab, 256);
}

std::vector<TokenId> random_tokens(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<TokenId> t(n);
  for (auto& x : t) x = static_cast<TokenId>(rng.next_below(kVocab));
  return t;
}

std::vector<int> iota_positions(size_t n, int start = 0) {
  std::vector<int> p(n);
  std::iota(p.begin(), p.end(), start);
  return p;
}

class ModelFamilyTest : public ::testing::TestWithParam<ArchFamily> {};

TEST_P(ModelFamilyTest, LogitShapes) {
  const Model model = Model::random(config_for(GetParam()), 1);
  KVCache cache = model.make_cache();
  const auto tokens = random_tokens(7, 11);
  const auto pos = iota_positions(7);
  const Tensor last = model.forward(tokens, pos, cache);
  EXPECT_EQ(last.dim(0), 1);
  EXPECT_EQ(last.dim(1), kVocab);

  KVCache cache2 = model.make_cache();
  const Tensor all = model.forward(tokens, pos, cache2, true);
  EXPECT_EQ(all.dim(0), 7);
  // Last row of all-logits equals the single-row result.
  for (int64_t j = 0; j < all.dim(1); ++j) {
    EXPECT_FLOAT_EQ(all.at(6, j), last.at(0, j));
  }
}

// The foundational KV-cache property (§2.2): feeding tokens incrementally
// with the cache produces the same states and logits as one full pass.
TEST_P(ModelFamilyTest, IncrementalForwardMatchesFullPrefill) {
  const Model model = Model::random(config_for(GetParam()), 2);
  const auto tokens = random_tokens(12, 13);
  const auto pos = iota_positions(12);

  KVCache full = model.make_cache();
  const Tensor full_logits = model.forward(tokens, pos, full);

  KVCache inc = model.make_cache();
  Tensor inc_logits;
  // Split 5 / 3 / 4.
  const std::vector<std::pair<size_t, size_t>> chunks = {{0, 5}, {5, 8}, {8, 12}};
  for (const auto& [b, e] : chunks) {
    inc_logits = model.forward(
        std::span<const TokenId>(tokens.data() + b, e - b),
        std::span<const int>(pos.data() + b, e - b), inc);
  }

  ASSERT_EQ(full.size(), inc.size());
  for (int l = 0; l < model.config().n_layers; ++l) {
    for (int t = 0; t < full.size(); ++t) {
      for (int e = 0; e < model.config().kv_dim(); ++e) {
        ASSERT_EQ(full.k_row(l, t)[e], inc.k_row(l, t)[e])
            << "K mismatch layer " << l << " token " << t;
        ASSERT_EQ(full.v_row(l, t)[e], inc.v_row(l, t)[e]);
      }
    }
  }
  EXPECT_EQ(max_abs_diff(full_logits, inc_logits), 0.0f);
}

// Discontinuous position IDs are the engine feature Prompt Cache needs
// (§3.1): a segment's states must depend only on its own positions, not on
// how many tokens the cache already holds.
TEST_P(ModelFamilyTest, SegmentStatesIndependentOfGapBefore) {
  const Model model = Model::random(config_for(GetParam()), 3);
  const auto tokens = random_tokens(6, 17);

  // Encode at positions 40..45 with an empty cache...
  KVCache a = model.make_cache();
  const auto pos_a = iota_positions(6, 40);
  (void)model.forward(tokens, pos_a, a);

  // ...and at the same positions in a second, separate run.
  KVCache b = model.make_cache();
  (void)model.forward(tokens, pos_a, b);

  for (int l = 0; l < model.config().n_layers; ++l) {
    for (int t = 0; t < 6; ++t) {
      for (int e = 0; e < model.config().kv_dim(); ++e) {
        ASSERT_EQ(a.k_row(l, t)[e], b.k_row(l, t)[e]);
      }
    }
  }
}

// forward_blocked with every token in one block equals plain forward.
TEST_P(ModelFamilyTest, SingleBlockEqualsUnmasked) {
  const Model model = Model::random(config_for(GetParam()), 4);
  const auto tokens = random_tokens(9, 19);
  const auto pos = iota_positions(9);
  const std::vector<int> blocks(9, 0);

  KVCache a = model.make_cache();
  const Tensor la = model.forward(tokens, pos, a);
  KVCache b = model.make_cache();
  const Tensor lb = model.forward_blocked(tokens, pos, blocks, b);
  EXPECT_EQ(max_abs_diff(la, lb), 0.0f);
}

// The central Prompt Cache equivalence (§3.1/§3.3): encoding modules
// independently and concatenating their KV states is exactly one blocked
// prefill with a block-diagonal mask and the same position IDs.
TEST_P(ModelFamilyTest, ModuleConcatEqualsBlockedPrefill) {
  const Model model = Model::random(config_for(GetParam()), 5);
  const auto mod1 = random_tokens(5, 23);
  const auto mod2 = random_tokens(7, 29);
  const auto suffix = random_tokens(3, 31);

  // Layout: mod1 at [0,5), mod2 at [5,12), suffix at [12,15).
  KVCache enc1 = model.make_cache();
  (void)model.forward(mod1, iota_positions(5, 0), enc1);
  KVCache enc2 = model.make_cache();
  (void)model.forward(mod2, iota_positions(7, 5), enc2);

  KVCache cached = model.make_cache();
  cached.append_copy(enc1);
  cached.append_copy(enc2);
  const Tensor cached_logits =
      model.forward(suffix, iota_positions(3, 12), cached);

  // Reference: one forward with a block-diagonal mask; the suffix uses the
  // global block (attends to everything).
  std::vector<TokenId> all;
  all.insert(all.end(), mod1.begin(), mod1.end());
  all.insert(all.end(), mod2.begin(), mod2.end());
  all.insert(all.end(), suffix.begin(), suffix.end());
  const auto pos = iota_positions(15);
  std::vector<int> blocks;
  blocks.insert(blocks.end(), 5, 1);
  blocks.insert(blocks.end(), 7, 2);
  blocks.insert(blocks.end(), 3, Model::kGlobalBlock);

  KVCache reference = model.make_cache();
  const Tensor ref_logits =
      model.forward_blocked(all, pos, blocks, reference);

  ASSERT_EQ(cached.size(), reference.size());
  for (int l = 0; l < model.config().n_layers; ++l) {
    for (int t = 0; t < cached.size(); ++t) {
      for (int e = 0; e < model.config().kv_dim(); ++e) {
        ASSERT_EQ(cached.k_row(l, t)[e], reference.k_row(l, t)[e])
            << "layer " << l << " token " << t << " elem " << e;
        ASSERT_EQ(cached.v_row(l, t)[e], reference.v_row(l, t)[e]);
      }
    }
  }
  EXPECT_EQ(max_abs_diff(cached_logits, ref_logits), 0.0f);
}

// Concatenation order must not matter (§3.4, permutation invariance): the
// suffix logits are identical whether modules are concatenated 1-2 or 2-1.
TEST_P(ModelFamilyTest, ConcatOrderInvariance) {
  const Model model = Model::random(config_for(GetParam()), 6);
  const auto mod1 = random_tokens(5, 37);
  const auto mod2 = random_tokens(6, 41);
  const auto suffix = random_tokens(2, 43);

  KVCache enc1 = model.make_cache();
  (void)model.forward(mod1, iota_positions(5, 0), enc1);
  KVCache enc2 = model.make_cache();
  (void)model.forward(mod2, iota_positions(6, 5), enc2);

  KVCache fwd = model.make_cache();
  fwd.append_copy(enc1);
  fwd.append_copy(enc2);
  const Tensor l12 = model.forward(suffix, iota_positions(2, 11), fwd);

  KVCache rev = model.make_cache();
  rev.append_copy(enc2);
  rev.append_copy(enc1);
  const Tensor l21 = model.forward(suffix, iota_positions(2, 11), rev);

  // Attention sums run in a different order, so allow tiny float drift.
  EXPECT_LE(max_abs_diff(l12, l21), 2e-4f);
}

TEST_P(ModelFamilyTest, GreedyGenerationIsDeterministic) {
  const Model model = Model::random(config_for(GetParam()), 7);
  const auto tokens = random_tokens(8, 47);
  const auto pos = iota_positions(8);

  GenerateOptions opts;
  opts.max_new_tokens = 6;
  opts.stop_tokens.clear();

  KVCache c1 = model.make_cache();
  const Tensor logits1 = model.forward(tokens, pos, c1);
  const auto out1 = model.generate_greedy(logits1, 8, c1, opts);

  KVCache c2 = model.make_cache();
  const Tensor logits2 = model.forward(tokens, pos, c2);
  const auto out2 = model.generate_greedy(logits2, 8, c2, opts);

  EXPECT_EQ(out1.size(), 6u);
  EXPECT_EQ(out1, out2);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ModelFamilyTest,
                         ::testing::Values(ArchFamily::kLlama,
                                           ArchFamily::kMpt,
                                           ArchFamily::kFalcon,
                                           ArchFamily::kGpt2),
                         [](const auto& info) {
                           switch (info.param) {
                             case ArchFamily::kLlama: return "Llama";
                             case ArchFamily::kMpt: return "Mpt";
                             case ArchFamily::kFalcon: return "Falcon";
                             case ArchFamily::kGpt2: return "Gpt2";
                           }
                           return "Unknown";
                         });

TEST(Sampling, ZeroTemperatureIsGreedy) {
  const Model model = Model::random(config_for(ArchFamily::kLlama), 21);
  const auto tokens = random_tokens(6, 61);
  const auto pos = iota_positions(6);
  KVCache cache = model.make_cache();
  const Tensor logits = model.forward(tokens, pos, cache);

  GenerateOptions greedy;
  greedy.temperature = 0.0f;
  Rng rng(1);
  EXPECT_EQ(Model::sample_token(logits, greedy, rng), Model::argmax(logits));
}

TEST(Sampling, TopK1EqualsGreedyAtAnyTemperature) {
  const Model model = Model::random(config_for(ArchFamily::kLlama), 22);
  const auto tokens = random_tokens(5, 67);
  KVCache cache = model.make_cache();
  const Tensor logits = model.forward(tokens, iota_positions(5), cache);

  GenerateOptions opts;
  opts.temperature = 2.0f;
  opts.top_k = 1;
  Rng rng(9);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Model::sample_token(logits, opts, rng), Model::argmax(logits));
  }
}

TEST(Sampling, SeededSamplingIsDeterministicAndSeedSensitive) {
  const Model model = Model::random(config_for(ArchFamily::kLlama), 23);
  const auto tokens = random_tokens(6, 71);
  const auto pos = iota_positions(6);

  GenerateOptions opts;
  opts.temperature = 1.5f;
  opts.max_new_tokens = 8;
  opts.stop_tokens.clear();
  opts.seed = 7;

  auto run = [&](uint64_t seed) {
    GenerateOptions o = opts;
    o.seed = seed;
    KVCache cache = model.make_cache();
    const Tensor logits = model.forward(tokens, pos, cache);
    return model.generate_greedy(logits, 6, cache, o);
  };
  EXPECT_EQ(run(7), run(7));
  // High temperature over a 64-token vocab: different seeds should diverge.
  bool diverged = false;
  for (uint64_t s = 8; s < 14 && !diverged; ++s) diverged = run(7) != run(s);
  EXPECT_TRUE(diverged);
}

TEST(Sampling, HighTemperatureSpreadsChoices) {
  const Model model = Model::random(config_for(ArchFamily::kLlama), 24);
  const auto tokens = random_tokens(4, 73);
  KVCache cache = model.make_cache();
  const Tensor logits = model.forward(tokens, iota_positions(4), cache);

  GenerateOptions opts;
  opts.temperature = 5.0f;
  Rng rng(3);
  std::set<TokenId> seen;
  for (int i = 0; i < 200; ++i) seen.insert(Model::sample_token(logits, opts, rng));
  EXPECT_GT(seen.size(), 5u);  // far from deterministic
}

TEST(StopSequences, MatchedTailIsRemovedAndGenerationStops) {
  // The induction model copies a known token chain, so the expected output
  // around a stop sequence is fully determined: the context plants
  // "20 -> 30 31 32 33" and the stop sequence {32, 33} must cut the copy
  // after "30 31".
  const Model model = make_induction_model({48, 64});
  const std::vector<TokenId> prompt = {5, 20, 30, 31, 32, 33, 6, 20};
  const auto pos = iota_positions(prompt.size());

  GenerateOptions plain;
  plain.max_new_tokens = 4;
  plain.stop_tokens.clear();
  KVCache c1 = model.make_cache();
  const auto full = model.generate_greedy(model.forward(prompt, pos, c1),
                                          static_cast<int>(prompt.size()),
                                          c1, plain);
  ASSERT_EQ(full, (std::vector<TokenId>{30, 31, 32, 33}));

  GenerateOptions stopping = plain;
  stopping.stop_sequences = {{32, 33}};
  KVCache c2 = model.make_cache();
  const auto cut = model.generate_greedy(model.forward(prompt, pos, c2),
                                         static_cast<int>(prompt.size()),
                                         c2, stopping);
  EXPECT_EQ(cut, (std::vector<TokenId>{30, 31}));

  // A stop sequence that never appears leaves the output untouched.
  GenerateOptions unmatched = plain;
  unmatched.stop_sequences = {{31, 30}};
  KVCache c3 = model.make_cache();
  EXPECT_EQ(model.generate_greedy(model.forward(prompt, pos, c3),
                                  static_cast<int>(prompt.size()), c3,
                                  unmatched),
            full);
}

TEST(ModelConfig, ValidatesHeadDivisibility) {
  ModelConfig c = ModelConfig::llama_tiny(kVocab);
  c.n_kv_heads = 4;  // 6 % 4 != 0
  EXPECT_THROW(Model::random(c, 1), ContractViolation);
}

TEST(ModelConfig, RejectsOddRopeHead) {
  ModelConfig c = ModelConfig::llama_tiny(kVocab);
  c.d_head = 31;
  EXPECT_THROW(Model::random(c, 1), ContractViolation);
}

TEST(Model, RejectsPositionBeyondMaxPos) {
  const Model model = Model::random(config_for(ArchFamily::kLlama), 8);
  KVCache cache = model.make_cache();
  const std::vector<TokenId> t = {1};
  const std::vector<int> p = {model.config().max_pos};
  EXPECT_THROW(model.forward(t, p, cache), ContractViolation);
}

TEST(Model, RejectsTokenOutsideVocab) {
  const Model model = Model::random(config_for(ArchFamily::kLlama), 9);
  KVCache cache = model.make_cache();
  const std::vector<TokenId> t = {kVocab};
  const std::vector<int> p = {0};
  EXPECT_THROW(model.forward(t, p, cache), ContractViolation);
}

// ALiBi biases are computed from stored position IDs: relocating a module
// must preserve relative distances, so logits depend on relative offsets
// only. Encode the same text at two different offsets and check the decode
// step sees identical attention (MPT family).
TEST(ModelAlibi, RelativePositionsDetermineAttention) {
  const Model model = Model::random(config_for(ArchFamily::kMpt), 10);
  const auto tokens = random_tokens(6, 53);

  KVCache a = model.make_cache();
  const Tensor la = model.forward(tokens, iota_positions(6, 0), a);
  KVCache b = model.make_cache();
  const Tensor lb = model.forward(tokens, iota_positions(6, 100), b);
  EXPECT_EQ(max_abs_diff(la, lb), 0.0f);
}

}  // namespace
}  // namespace pc
