// Tests for the C embedding API: lifecycle, serving, error reporting, and
// persistence — all through the extern "C" surface only.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "capi/prompt_cache_c.h"

namespace {

// Single module (no anonymous text): the cached and baseline paths are
// bitwise-equal in this layout, so generated text must match exactly.
constexpr const char* kSchema = R"(
  <schema name="capi">
    <module name="doc">the city has a famous market and a long river walk</module>
  </schema>)";
constexpr const char* kPrompt =
    R"(<prompt schema="capi"><doc/> what should we see ?</prompt>)";

TEST(CApi, LifecycleAndServe) {
  pc_engine* engine = pc_engine_create(PC_MODEL_LLAMA_TINY, 42, 0);
  ASSERT_NE(engine, nullptr) << pc_last_error();
  ASSERT_EQ(pc_load_schema(engine, kSchema), 0) << pc_last_error();

  pc_serve_result cached{};
  ASSERT_EQ(pc_serve(engine, kPrompt, 6, &cached), 0) << pc_last_error();
  EXPECT_NE(cached.text, nullptr);
  EXPECT_GT(cached.cached_tokens, 0);
  EXPECT_GT(cached.ttft_ms, 0.0);

  pc_serve_result baseline{};
  ASSERT_EQ(pc_serve_baseline(engine, kPrompt, 6, &baseline), 0);
  EXPECT_EQ(baseline.cached_tokens, 0);
  EXPECT_GT(baseline.uncached_tokens, cached.uncached_tokens);
  // Single module + suffix: the two paths agree exactly.
  EXPECT_STREQ(cached.text, baseline.text);

  pc_string_free(cached.text);
  pc_string_free(baseline.text);
  pc_engine_destroy(engine);
}

TEST(CApi, EveryFamilyConstructs) {
  for (pc_model_family family :
       {PC_MODEL_LLAMA_TINY, PC_MODEL_MPT_TINY, PC_MODEL_FALCON_TINY,
        PC_MODEL_GPT2_TINY}) {
    pc_engine* engine = pc_engine_create(family, 7, /*zero_copy=*/1);
    ASSERT_NE(engine, nullptr) << pc_last_error();
    EXPECT_EQ(pc_load_schema(engine, kSchema), 0);
    pc_serve_result r{};
    EXPECT_EQ(pc_serve(engine, kPrompt, 2, &r), 0) << pc_last_error();
    pc_string_free(r.text);
    pc_engine_destroy(engine);
  }
}

TEST(CApi, ErrorsAreReportedNotThrown) {
  pc_engine* engine = pc_engine_create(PC_MODEL_LLAMA_TINY, 1, 0);
  ASSERT_NE(engine, nullptr);

  EXPECT_EQ(pc_load_schema(engine, "<not pml"), -1);
  EXPECT_NE(std::string(pc_last_error()), "");

  pc_serve_result r{};
  EXPECT_EQ(pc_serve(engine, R"(<prompt schema="ghost">x</prompt>)", 4, &r),
            -1);
  EXPECT_NE(std::string(pc_last_error()).find("ghost"), std::string::npos);

  EXPECT_EQ(pc_load_schema(nullptr, kSchema), -1);
  EXPECT_EQ(pc_serve(engine, nullptr, 4, &r), -1);
  EXPECT_EQ(pc_save_modules(engine, nullptr), -1);

  // A successful call clears the error.
  EXPECT_EQ(pc_load_schema(engine, kSchema), 0);
  EXPECT_STREQ(pc_last_error(), "");
  pc_engine_destroy(engine);
}

TEST(CApi, PersistenceRoundTrip) {
  const std::string path = ::testing::TempDir() + "pc_capi_modules.bin";
  {
    pc_engine* engine = pc_engine_create(PC_MODEL_LLAMA_TINY, 42, 0);
    ASSERT_EQ(pc_load_schema(engine, kSchema), 0);
    EXPECT_EQ(pc_save_modules(engine, path.c_str()), 1);
    pc_engine_destroy(engine);
  }
  pc_engine* engine = pc_engine_create(PC_MODEL_LLAMA_TINY, 42, 0);
  EXPECT_EQ(pc_load_modules(engine, path.c_str()), 1);
  EXPECT_EQ(pc_load_modules(engine, "/nonexistent/path"), -1);
  pc_engine_destroy(engine);
  std::remove(path.c_str());
}

TEST(CApi, DeadlineServeReportsStatus) {
  pc_engine* engine = pc_engine_create(PC_MODEL_LLAMA_TINY, 42, 0);
  ASSERT_NE(engine, nullptr) << pc_last_error();
  ASSERT_EQ(pc_load_schema(engine, kSchema), 0);

  // A generous deadline serves normally, identical to pc_serve.
  pc_serve_result plain{};
  ASSERT_EQ(pc_serve(engine, kPrompt, 6, &plain), 0);
  pc_serve_result timed{};
  ASSERT_EQ(pc_serve_deadline(engine, kPrompt, 6, /*deadline_ms=*/60000,
                              &timed),
            0)
      << pc_last_error();
  EXPECT_EQ(timed.status, PC_SERVE_OK);
  EXPECT_STREQ(timed.text, plain.text);

  // deadline_ms = 0 disables enforcement entirely.
  pc_serve_result open{};
  ASSERT_EQ(pc_serve_deadline(engine, kPrompt, 6, 0, &open), 0);
  EXPECT_EQ(open.status, PC_SERVE_OK);

  pc_string_free(plain.text);
  pc_string_free(timed.text);
  pc_string_free(open.text);
  pc_engine_destroy(engine);
}

TEST(CApi, RecoveryLoadSkipsCorruptRecords) {
  const std::string path = ::testing::TempDir() + "pc_capi_recover.bin";
  {
    pc_engine* engine = pc_engine_create(PC_MODEL_LLAMA_TINY, 42, 0);
    ASSERT_EQ(pc_load_schema(engine, kSchema), 0);
    ASSERT_EQ(pc_save_modules(engine, path.c_str()), 1);
    pc_engine_destroy(engine);
  }
  // Clean file: everything loads, nothing skipped.
  pc_engine* engine = pc_engine_create(PC_MODEL_LLAMA_TINY, 42, 0);
  long skipped = -1;
  EXPECT_EQ(pc_load_modules_recover(engine, path.c_str(), &skipped), 1);
  EXPECT_EQ(skipped, 0);
  EXPECT_EQ(pc_load_modules_recover(engine, "/nonexistent/path", &skipped),
            -1);
  pc_engine_destroy(engine);
  std::remove(path.c_str());
}

}  // namespace
