// The engine's documented scaling contract: one engine per worker over a
// shared const Model. Engines on different threads must serve concurrently
// and correctly (the Model's forward pass is stateless; the global thread
// pool's parallel_for is reentrant).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/engine.h"
#include "eval/workload.h"
#include "model/induction.h"

namespace pc {
namespace {

TEST(Concurrency, OneEnginePerThreadServesCorrectly) {
  AccuracyWorkload workload(7);
  const Model model =
      make_induction_model({workload.vocab().size(), 256});

  constexpr int kThreads = 4;
  constexpr int kServesPerThread = 6;
  std::atomic<int> correct{0};
  std::atomic<int> failures{0};

  auto worker = [&](int tid) {
    try {
      PromptCacheEngine engine(model, workload.tokenizer());
      engine.load_schema(R"(
        <schema name="c">
          <module name="d1">w00 w01 q05 a10 a11 . w02</module>
          <module name="d2">w03 q06 a12 a13 . w04</module>
        </schema>)");
      GenerateOptions opts;
      opts.max_new_tokens = 5;
      opts.stop_tokens = {workload.stop_token()};
      for (int i = 0; i < kServesPerThread; ++i) {
        const bool first = (i + tid) % 2 == 0;
        const ServeResult r = engine.serve(
            first ? R"(<prompt schema="c"><d1/><d2/> question: q05</prompt>)"
                  : R"(<prompt schema="c"><d1/><d2/> question: q06</prompt>)",
            opts);
        if (r.text == (first ? "a10 a11" : "a12 a13")) {
          correct.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
    } catch (...) {
      failures.fetch_add(1000);
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(correct.load(), kThreads * kServesPerThread);
}

TEST(Concurrency, SharedModelForwardIsReentrant) {
  const Model model =
      Model::random(ModelConfig::llama_tiny(64, 128), 5);
  const std::vector<TokenId> tokens = {1, 2, 3, 4, 5};
  const std::vector<int> pos = {0, 1, 2, 3, 4};

  // Reference result single-threaded.
  KVCache ref_cache = model.make_cache();
  const Tensor ref = model.forward(tokens, pos, ref_cache);

  std::atomic<int> mismatches{0};
  auto worker = [&] {
    for (int i = 0; i < 8; ++i) {
      KVCache cache = model.make_cache();
      const Tensor out = model.forward(tokens, pos, cache);
      for (int64_t j = 0; j < out.dim(1); ++j) {
        if (out.at(0, j) != ref.at(0, j)) {
          mismatches.fetch_add(1);
          return;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker);
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace pc
