// Unit tests for the scoring metrics against hand-computed values.
#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace pc {
namespace {

TEST(Normalize, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(normalize_answer("The Answer, is: 42!"),
            (std::vector<std::string>{"the", "answer", "is", "42"}));
  EXPECT_TRUE(normalize_answer("  ...  ").empty());
}

TEST(F1, PerfectAndZero) {
  EXPECT_DOUBLE_EQ(f1_score("paris", "Paris"), 1.0);
  EXPECT_DOUBLE_EQ(f1_score("london", "paris"), 0.0);
  EXPECT_DOUBLE_EQ(f1_score("", ""), 1.0);
  EXPECT_DOUBLE_EQ(f1_score("x", ""), 0.0);
}

TEST(F1, PartialOverlapHandComputed) {
  // pred {a b c}, ref {b c d}: overlap 2, P=2/3, R=2/3, F1=2/3.
  EXPECT_NEAR(f1_score("a b c", "b c d"), 2.0 / 3.0, 1e-9);
  // pred {a a b}, ref {a b}: multiset overlap 2, P=2/3, R=1 -> 0.8.
  EXPECT_NEAR(f1_score("a a b", "a b"), 0.8, 1e-9);
}

TEST(F1, OrderInsensitive) {
  EXPECT_DOUBLE_EQ(f1_score("one two three", "three two one"), 1.0);
}

TEST(Lcs, HandComputedCases) {
  EXPECT_EQ(lcs_length({"a", "b", "c", "d"}, {"b", "d"}), 2u);
  EXPECT_EQ(lcs_length({"a", "b"}, {"c", "d"}), 0u);
  EXPECT_EQ(lcs_length({}, {"a"}), 0u);
  EXPECT_EQ(lcs_length({"x", "a", "y", "b", "z"}, {"a", "b"}), 2u);
}

TEST(RougeL, OrderSensitiveUnlikeF1) {
  EXPECT_DOUBLE_EQ(rouge_l("one two three", "one two three"), 1.0);
  // Reversed order: LCS = 1, P = R = 1/3.
  EXPECT_NEAR(rouge_l("three two one", "one two three"), 1.0 / 3.0, 1e-9);
  EXPECT_GT(f1_score("three two one", "one two three"),
            rouge_l("three two one", "one two three"));
}

TEST(RougeL, PartialHandComputed) {
  // pred "a x b", ref "a b": LCS=2, P=2/3, R=1 -> F=0.8.
  EXPECT_NEAR(rouge_l("a x b", "a b"), 0.8, 1e-9);
}

TEST(SubstringMatch, FindsContiguousRuns) {
  EXPECT_DOUBLE_EQ(substring_match("the answer is passage five ok",
                                   "Passage Five"),
                   1.0);
  EXPECT_DOUBLE_EQ(substring_match("passage ok five", "passage five"), 0.0);
  EXPECT_DOUBLE_EQ(substring_match("anything", ""), 1.0);
  EXPECT_DOUBLE_EQ(substring_match("", "x"), 0.0);
}

TEST(ExactMatch, NormalizedEquality) {
  EXPECT_DOUBLE_EQ(exact_match("A1 b2.", "a1 B2"), 1.0);
  EXPECT_DOUBLE_EQ(exact_match("a1 b2 c3", "a1 b2"), 0.0);
}

}  // namespace
}  // namespace pc
