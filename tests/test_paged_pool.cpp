// Unit tests for the paged KV pool: allocation, reference-counted sharing,
// copy-on-write, and the batch-sharing footprint accounting of paper §3.4.
#include <gtest/gtest.h>

#include <cstring>

#include "kv/paged_pool.h"

namespace pc {
namespace {

TEST(PagedPool, AllocateAndRelease) {
  PagedKVPool pool(16, 64);
  EXPECT_EQ(pool.page_bytes(), 16u * 64u);
  const PageId a = pool.allocate();
  const PageId b = pool.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.live_pages(), 2);
  pool.release(a);
  EXPECT_EQ(pool.live_pages(), 1);
  pool.release(b);
  EXPECT_EQ(pool.live_pages(), 0);
  EXPECT_EQ(pool.stats().pages_freed, 2u);
}

TEST(PagedPool, FreeListReusesIds) {
  PagedKVPool pool(4, 8);
  const PageId a = pool.allocate();
  pool.release(a);
  const PageId b = pool.allocate();
  EXPECT_EQ(a, b);  // recycled
  // Recycled pages come back zeroed.
  EXPECT_FLOAT_EQ(pool.data(b)[0], 0.0f);
}

TEST(PagedPool, RetainReleaseRefcounting) {
  PagedKVPool pool(4, 8);
  const PageId p = pool.allocate();
  pool.retain(p);
  EXPECT_EQ(pool.refcount(p), 2);
  pool.release(p);
  EXPECT_EQ(pool.live_pages(), 1);  // still referenced
  pool.release(p);
  EXPECT_EQ(pool.live_pages(), 0);
  EXPECT_THROW(pool.release(p), ContractViolation);  // double free
}

TEST(PagedPool, CopyOnWriteDuplicatesSharedPage) {
  PagedKVPool pool(4, 8);
  const PageId p = pool.allocate();
  pool.data(p)[0] = 42.0f;
  pool.retain(p);

  const PageId w = pool.make_writable(p);
  EXPECT_NE(w, p);
  EXPECT_FLOAT_EQ(pool.data(w)[0], 42.0f);  // contents copied
  EXPECT_EQ(pool.refcount(p), 1);
  EXPECT_EQ(pool.stats().cow_copies, 1u);

  // Exclusive pages are returned as-is.
  EXPECT_EQ(pool.make_writable(w), w);
  pool.release(p);
  pool.release(w);
}

TEST(PagedPool, CowCopyIsBitwiseIdentical) {
  // The COW path allocates its destination uninitialized and must overwrite
  // every float of it: the duplicate is bitwise-equal to the source page.
  PagedKVPool pool(16, 64);
  const size_t floats = pool.page_bytes() / sizeof(float);
  const PageId p = pool.allocate();
  for (size_t i = 0; i < floats; ++i) {
    pool.data(p)[i] = 0.5f + 0.25f * static_cast<float>(i % 97);
  }
  pool.retain(p);
  const PageId w = pool.make_writable(p);
  ASSERT_NE(w, p);
  EXPECT_EQ(std::memcmp(pool.data(w), pool.data(p), pool.page_bytes()), 0);
  pool.release(p);
  pool.release(w);
}

TEST(PagedPool, UninitializedAllocationsCountedOnlyForCow) {
  PagedKVPool pool(8, 32);
  const PageId a = pool.allocate();
  const PageId b = pool.allocate();
  // Fresh pages stay on the zero-filling path...
  EXPECT_EQ(pool.stats().uninitialized_allocations, 0u);
  const size_t floats = pool.page_bytes() / sizeof(float);
  for (size_t i = 0; i < floats; ++i) {
    EXPECT_EQ(pool.data(a)[i], 0.0f) << i;
  }
  // ...while COW duplication skips the redundant zero-fill.
  pool.retain(b);
  const PageId w = pool.make_writable(b);
  EXPECT_EQ(pool.stats().uninitialized_allocations, 1u);
  EXPECT_EQ(pool.stats().cow_copies, 1u);
  EXPECT_EQ(pool.stats().pages_allocated, 3u);
  pool.release(a);
  pool.release(b);
  pool.release(w);
}

TEST(PagedSequence, AppendAllocatesByPageGranularity) {
  PagedKVPool pool(8, 4);
  PagedSequence seq(pool);
  seq.append_tokens(3);
  EXPECT_EQ(seq.pages().size(), 1u);
  seq.append_tokens(5);  // fills the page exactly
  EXPECT_EQ(seq.pages().size(), 1u);
  seq.append_tokens(1);
  EXPECT_EQ(seq.pages().size(), 2u);
  EXPECT_EQ(seq.n_tokens(), 9);
}

// The §3.4 batch optimization: N sequences importing the same module share
// its pages; memory grows with unique content, not batch size.
TEST(PagedSequence, SharedModulePagesAreStoredOnce) {
  PagedKVPool pool(8, 4);

  // "Module": 24 tokens = 3 pages, encoded once.
  PagedSequence module_seq(pool);
  module_seq.append_tokens(24);
  EXPECT_EQ(pool.live_pages(), 3);

  // A batch of 5 sequences, each importing the module + 8 private tokens.
  std::vector<PagedSequence> batch;
  for (int i = 0; i < 5; ++i) {
    PagedSequence s(pool);
    s.append_shared(module_seq);
    s.append_tokens(8);
    batch.push_back(std::move(s));
  }
  // 3 shared module pages + 5 private pages.
  EXPECT_EQ(pool.live_pages(), 3 + 5);
  for (const auto& s : batch) EXPECT_EQ(s.n_tokens(), 32);

  // Without sharing it would be 5 * (3 + 1) = 20 pages.
  EXPECT_LT(pool.live_bytes(), 20u * pool.page_bytes());

  batch.clear();
  EXPECT_EQ(pool.live_pages(), 3);  // module survives its consumers
}

TEST(PagedSequence, WritingASharedTokenTriggersCow) {
  PagedKVPool pool(4, 4);
  PagedSequence module_seq(pool);
  module_seq.append_tokens(4);

  PagedSequence consumer(pool);
  consumer.append_shared(module_seq);
  const PageId shared = consumer.pages()[0];
  EXPECT_EQ(pool.refcount(shared), 2);

  consumer.make_token_writable(2);
  EXPECT_NE(consumer.pages()[0], shared);
  EXPECT_EQ(pool.refcount(shared), 1);
  EXPECT_EQ(pool.stats().cow_copies, 1u);
}

TEST(PagedSequence, AppendSharedRequiresPageAlignment) {
  PagedKVPool pool(8, 4);
  PagedSequence src(pool);
  src.append_tokens(8);
  PagedSequence dst(pool);
  dst.append_tokens(3);  // mid-page
  EXPECT_THROW(dst.append_shared(src), ContractViolation);
}

TEST(PagedSequence, MoveTransfersOwnership) {
  PagedKVPool pool(4, 4);
  PagedSequence a(pool);
  a.append_tokens(4);
  PagedSequence b = std::move(a);
  EXPECT_EQ(b.n_tokens(), 4);
  EXPECT_EQ(pool.live_pages(), 1);
}

}  // namespace
}  // namespace pc
