// Tests for the synthetic workload generators, including end-to-end
// retrieval through the engine: planted answers must be recovered by the
// induction model, and straddling facts must differentiate baseline from
// cached — the Table 1 mechanism.
#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "model/induction.h"

namespace pc {
namespace {

DatasetSpec find_dataset(const std::string& name) {
  for (const auto& d : DatasetSpec::longbench8()) {
    if (d.name == name) return d;
  }
  throw Error("no dataset " + name);
}

TEST(DatasetSpecs, EightDatasetsWithPaperMetrics) {
  const auto& specs = DatasetSpec::longbench8();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(find_dataset("GovReport").metric, TaskMetric::kRougeL);
  EXPECT_EQ(find_dataset("NarrativeQA").metric, TaskMetric::kF1);
  EXPECT_EQ(find_dataset("PassageRet").metric, TaskMetric::kAccuracy);
  // Passage retrieval is the straddle-heavy outlier; TriviaQA has the
  // largest uncached question (paper §5.2.2).
  EXPECT_GT(find_dataset("PassageRet").straddle_fraction, 0.3);
  for (const auto& d : specs) {
    EXPECT_LE(d.straddle_fraction, find_dataset("PassageRet").straddle_fraction);
    EXPECT_LE(d.latency_question_tokens,
              find_dataset("TriviaQA").latency_question_tokens);
  }
}

TEST(DatasetSpecs, FullSuiteHas21UniqueDatasets) {
  const auto& all = DatasetSpec::longbench21();
  ASSERT_EQ(all.size(), 21u);
  std::set<std::string> names;
  for (const auto& d : all) names.insert(d.name);
  EXPECT_EQ(names.size(), 21u);
  // The figure subset is a prefix of the full suite.
  for (size_t i = 0; i < DatasetSpec::longbench8().size(); ++i) {
    EXPECT_EQ(all[i].name, DatasetSpec::longbench8()[i].name);
  }
}

TEST(DatasetSpecs, FullSuiteFitsTheAccuracyBudget) {
  AccuracyWorkload w(5);
  for (const auto& spec : DatasetSpec::longbench21()) {
    const AccuracySample s = w.make_sample(spec, 0);
    EXPECT_LT(s.context_tokens + 16, AccuracyWorkload::kMaxSchemaPositions)
        << spec.name;
    EXPECT_FALSE(s.reference.empty()) << spec.name;
  }
}

TEST(AccuracyWorkload, SamplesAreDeterministic) {
  AccuracyWorkload w1(5), w2(5);
  const DatasetSpec spec = find_dataset("2WikiMQA");
  const AccuracySample a = w1.make_sample(spec, 3);
  const AccuracySample b = w2.make_sample(spec, 3);
  EXPECT_EQ(a.schema_pml, b.schema_pml);
  EXPECT_EQ(a.prompt_pml, b.prompt_pml);
  EXPECT_EQ(a.reference, b.reference);
  const AccuracySample c = w1.make_sample(spec, 4);
  EXPECT_NE(a.schema_pml, c.schema_pml);
}

TEST(AccuracyWorkload, SamplesFitThePositionBudget) {
  AccuracyWorkload w(5);
  for (const auto& spec : DatasetSpec::longbench8()) {
    for (int i = 0; i < 3; ++i) {
      const AccuracySample s = w.make_sample(spec, i);
      EXPECT_LT(s.context_tokens + 16,
                AccuracyWorkload::kMaxSchemaPositions)
          << spec.name;
      EXPECT_FALSE(s.reference.empty());
      EXPECT_NE(s.question.find("question:"), std::string::npos);
    }
  }
}

TEST(AccuracyWorkload, ReferencesUseAnswerVocabulary) {
  AccuracyWorkload w(5);
  const AccuracySample s = w.make_sample(find_dataset("NarrativeQA"), 0);
  for (const auto& tok : normalize_answer(s.reference)) {
    EXPECT_EQ(tok[0], 'a') << "answer tokens come from the a## pool";
  }
}

// End-to-end: the induction model must retrieve planted answers both with
// and without Prompt Cache on a no-straddle dataset.
TEST(AccuracyWorkload, PlantedAnswersAreRetrievable) {
  AccuracyWorkload w(7);
  Model model = make_induction_model(
      {w.vocab().size(), AccuracyWorkload::kMaxSchemaPositions + 64});
  DatasetSpec spec = find_dataset("GovReport");
  spec.straddle_fraction = 0.0;
  spec.collision_rate = 0.0;  // no planted ambiguity: retrieval must be exact

  GenerateOptions opts;
  opts.max_new_tokens = spec.answer_len + 2;
  opts.stop_tokens = {w.stop_token()};

  for (int i = 0; i < 2; ++i) {
    const AccuracySample sample = w.make_sample(spec, i);
    PromptCacheEngine engine(model, w.tokenizer());
    engine.load_schema(sample.schema_pml);
    const ServeResult cached = engine.serve(sample.prompt_pml, opts);
    const ServeResult baseline =
        engine.serve_baseline(sample.prompt_pml, opts);
    EXPECT_EQ(cached.text, sample.reference) << sample.schema_pml;
    EXPECT_EQ(baseline.text, sample.reference);
  }
}

// Straddling facts: retrievable by the baseline, lost under caching.
TEST(AccuracyWorkload, StraddledFactsSplitBaselineFromCached) {
  AccuracyWorkload w(7);
  Model model = make_induction_model(
      {w.vocab().size(), AccuracyWorkload::kMaxSchemaPositions + 64});
  DatasetSpec spec = find_dataset("PassageRet");
  spec.straddle_fraction = 1.0;  // force the boundary case
  spec.collision_rate = 0.0;     // isolate the straddle effect

  GenerateOptions opts;
  opts.max_new_tokens = spec.answer_len + 2;
  opts.stop_tokens = {w.stop_token()};

  double baseline_score = 0, cached_score = 0;
  const int n = 3;
  for (int i = 0; i < n; ++i) {
    const AccuracySample sample = w.make_sample(spec, i);
    PromptCacheEngine engine(model, w.tokenizer());
    engine.load_schema(sample.schema_pml);
    baseline_score +=
        exact_match(engine.serve_baseline(sample.prompt_pml, opts).text,
                    sample.reference);
    cached_score += exact_match(engine.serve(sample.prompt_pml, opts).text,
                                sample.reference);
  }
  EXPECT_EQ(baseline_score, n);
  EXPECT_LT(cached_score, baseline_score);
}

TEST(LatencyWorkload, SamplesMatchDatasetShape) {
  LatencyWorkload w(9);
  const DatasetSpec spec = find_dataset("TriviaQA");
  const LatencySample s = w.make_sample(spec, 0, /*scale=*/0.1);
  EXPECT_GT(s.context_tokens, 100);
  EXPECT_NEAR(s.question_tokens, spec.latency_question_tokens, 5);
  // The PML is parseable against the built-in vocabulary.
  EXPECT_NE(s.schema_pml.find("<module"), std::string::npos);
  EXPECT_NE(s.prompt_pml.find("<prompt"), std::string::npos);
}

TEST(LatencyWorkload, SweepSampleHasExactTokenBudget) {
  LatencyWorkload w(9);
  const LatencySample s = w.make_sweep_sample(256, 4, "sweep");
  EXPECT_EQ(s.context_tokens, 256);
  EXPECT_EQ(s.question_tokens, 1);
}

TEST(LatencyWorkload, ScaleShrinksContexts) {
  LatencyWorkload w(9);
  const DatasetSpec spec = find_dataset("NarrativeQA");
  const LatencySample full = w.make_sample(spec, 0, 1.0);
  const LatencySample half = w.make_sample(spec, 1, 0.5);
  EXPECT_GT(full.context_tokens, half.context_tokens * 1.7);
}

}  // namespace
}  // namespace pc
