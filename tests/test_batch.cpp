// Tests for batched serving and its module-sharing accounting (§3.4).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/workload.h"
#include "model/induction.h"

namespace pc {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  BatchTest()
      : workload_(7),
        model_(make_induction_model({workload_.vocab().size(), 256})) {}

  GenerateOptions answer_options() const {
    GenerateOptions o;
    o.max_new_tokens = 4;
    o.stop_tokens = {workload_.stop_token()};
    return o;
  }

  static constexpr const char* kSchema = R"(
    <schema name="b">
      <module name="sys">w00 w01 w02 w03 w04 w05 w06 w07</module>
      <module name="d1">w08 q05 a10 a11 . w09</module>
      <module name="d2">w10 q06 a12 a13 . w11</module>
    </schema>)";

  std::vector<std::string> batch_prompts() const {
    return {
        R"(<prompt schema="b"><sys/><d1/> question: q05</prompt>)",
        R"(<prompt schema="b"><sys/><d2/> question: q06</prompt>)",
        R"(<prompt schema="b"><sys/><d1/><d2/> question: q06</prompt>)",
    };
  }

  AccuracyWorkload workload_;
  Model model_;
};

TEST_F(BatchTest, ResultsMatchIndividualServes) {
  PromptCacheEngine engine(model_, workload_.tokenizer());
  engine.load_schema(kSchema);
  const auto prompts = batch_prompts();

  const auto batch = engine.serve_batch(prompts, answer_options());
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].text, "a10 a11");
  EXPECT_EQ(batch[1].text, "a12 a13");
  EXPECT_EQ(batch[2].text, "a12 a13");

  PromptCacheEngine fresh(model_, workload_.tokenizer());
  fresh.load_schema(kSchema);
  for (size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(fresh.serve(prompts[i], answer_options()).tokens,
              batch[i].tokens);
  }
}

TEST_F(BatchTest, SharedBytesCountEachModuleOnce) {
  PromptCacheEngine engine(model_, workload_.tokenizer());
  engine.load_schema(kSchema);

  PromptCacheEngine::BatchStats stats;
  (void)engine.serve_batch(batch_prompts(), answer_options(), &stats);
  EXPECT_EQ(stats.requests, 3);

  // sys + d1 + d2, once each.
  size_t all_modules = 0;
  engine.store().for_each([&](const std::string&, const EncodedModule& m,
                              ModuleLocation) {
    all_modules += m.payload_bytes();
  });
  EXPECT_EQ(stats.shared_module_bytes, all_modules);
  // sys is reused by all three prompts, d1/d2 by two: duplicates avoided.
  EXPECT_GT(stats.duplicate_module_bytes_avoided,
            stats.shared_module_bytes);
}

TEST_F(BatchTest, ZeroCopyBatchOwnsOnlyTails) {
  EngineConfig cfg;
  cfg.zero_copy = true;
  PromptCacheEngine engine(model_, workload_.tokenizer(), cfg);
  engine.load_schema(kSchema);

  PromptCacheEngine::BatchStats zc_stats;
  (void)engine.serve_batch(batch_prompts(), answer_options(), &zc_stats);

  PromptCacheEngine copy_engine(model_, workload_.tokenizer());
  copy_engine.load_schema(kSchema);
  PromptCacheEngine::BatchStats copy_stats;
  (void)copy_engine.serve_batch(batch_prompts(), answer_options(),
                                &copy_stats);

  // Zero-copy requests own far less memory than copying requests.
  EXPECT_LT(zc_stats.owned_bytes * 3, copy_stats.owned_bytes);
  EXPECT_EQ(zc_stats.shared_module_bytes, copy_stats.shared_module_bytes);
}

TEST_F(BatchTest, EmptyBatchIsFine) {
  PromptCacheEngine engine(model_, workload_.tokenizer());
  engine.load_schema(kSchema);
  PromptCacheEngine::BatchStats stats;
  const auto results = engine.serve_batch({}, answer_options(), &stats);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(stats.requests, 0);
  EXPECT_EQ(stats.shared_module_bytes, 0u);
}

}  // namespace
}  // namespace pc
