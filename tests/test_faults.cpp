// Fault-tolerant serving: the chaos suite.
//
//   * FaultInjector spec parsing, deterministic replay, count caps;
//   * serve_full_prefill (the degradation path) is bitwise-identical to
//     cached serving for module/param/scaffold/kickoff prompts;
//   * retry-with-backoff converts transient encode faults into kOk, and
//     exhausted retries degrade instead of failing;
//   * a multi-worker server under seeded encode+link+evict+stall faults
//     serves every request (availability 1.0), bitwise-equal to a
//     fault-free run, with exact status accounting;
//   * deadline semantics: default vs override, expiry while queued sheds
//     before service, expiry mid-service times out, and deadline_met is
//     consistent with the status;
//   * load shedding when the backlog makes a deadline unmeetable;
//   * submit() blocked on a full queue throws when stop() runs (the
//     shutdown race);
//   * corrupt-record faults during load are skipped under kSkipCorrupt.
//
// Every test configures (or disables) the injector explicitly, so the
// suite is deterministic under any ambient PC_FAULTS — except the chaos
// test, which honors an env-provided spec when present (the CI smoke).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/error.h"
#include "core/engine.h"
#include "core/shared_module_store.h"
#include "eval/workload.h"
#include "model/induction.h"
#include "sys/fault.h"
#include "sys/server.h"

namespace pc {
namespace {

constexpr char kSchema[] = R"(
  <schema name="c">
    <module name="d1">w00 w01 q05 a10 a11 . w02</module>
    <module name="d2">w03 q06 a12 a13 . w04</module>
    <module name="d3">w05 w06 q07 a14 a15 . w07</module>
    <module name="d4">w08 q08 a16 a17 . w09</module>
  </schema>)";

const char* const kPrompts[] = {
    R"(<prompt schema="c"><d1/><d2/> question: q05</prompt>)",
    R"(<prompt schema="c"><d1/><d2/> question: q06</prompt>)",
    R"(<prompt schema="c"><d3/><d4/> question: q07</prompt>)",
    R"(<prompt schema="c"><d3/><d4/> question: q08</prompt>)",
    R"(<prompt schema="c"><d1/><d2/><d3/><d4/> question: q07</prompt>)",
    R"(<prompt schema="c"><d2/><d4/> question: q08</prompt>)",
};
constexpr size_t kNumPrompts = std::size(kPrompts);

GenerateOptions ask_options(const AccuracyWorkload& workload) {
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  opts.stop_tokens = {workload.stop_token()};
  return opts;
}

// Every test leaves the injector disarmed, whatever PC_FAULTS says — the
// suite must be deterministic; tests that want faults configure their own.
class FaultTest : public ::testing::Test {
 protected:
  FaultTest() { FaultInjector::global().disable(); }
  ~FaultTest() override { FaultInjector::global().disable(); }
};

// The status/deadline invariant that must hold for every response:
// served implies the deadline was met; timeout/shed imply it was not.
void check_status_invariants(const ServerResponse& r) {
  if (is_served(r.status)) {
    EXPECT_TRUE(r.deadline_met) << "id " << r.id << ": " << r.detail;
  }
  if (r.status == ServeStatus::kTimeout || r.status == ServeStatus::kShed) {
    EXPECT_FALSE(r.deadline_met) << "id " << r.id;
    EXPECT_TRUE(r.result.tokens.empty()) << "id " << r.id;
  }
}

void check_accounting(const ServerStats& s) {
  EXPECT_EQ(s.completed + s.shed + s.timeouts + s.failed, s.submitted);
  EXPECT_LE(s.degraded, s.completed);
}

// ---------------------------------------------------------------------------
// FaultInjector
// (These need a live injector; with -DPC_FAULTS=OFF it is a stub that
// never arms, so they compile out with it.)

#if PC_FAULTS_ENABLED

TEST_F(FaultTest, SpecParsesAndArms) {
  FaultInjector& f = FaultInjector::global();
  EXPECT_FALSE(f.enabled());
  EXPECT_EQ(f.spec(), "");

  f.configure("seed=7,encode=0.5x3,stall=0.25:42");
  EXPECT_TRUE(f.enabled());
  EXPECT_EQ(f.spec(), "seed=7,encode=0.5x3,stall=0.25:42");
  EXPECT_DOUBLE_EQ(f.stall_ms(FaultPoint::kStall), 42.0);

  f.disable();
  EXPECT_FALSE(f.enabled());
  EXPECT_EQ(f.spec(), "");
  EXPECT_FALSE(f.should_fail(FaultPoint::kEncode));
}

TEST_F(FaultTest, BadSpecsThrow) {
  FaultInjector& f = FaultInjector::global();
  EXPECT_THROW(f.configure("bogus=0.5"), Error);
  EXPECT_THROW(f.configure("encode=1.5"), Error);
  EXPECT_THROW(f.configure("encode=-0.1"), Error);
  EXPECT_THROW(f.configure("encode=abc"), Error);
  EXPECT_THROW(f.configure("encode"), Error);
  EXPECT_THROW(f.configure("seed=notanumber"), Error);
  EXPECT_FALSE(f.enabled());  // a failed configure never arms
}

TEST_F(FaultTest, MalformedSpecsThrowConfigErrorPerForm) {
  // Every malformed form must raise pc::ConfigError at configure time — a
  // typo'd chaos spec fails loudly at startup instead of silently running
  // a clean "chaos" test. One case per grammar production.
  FaultInjector& f = FaultInjector::global();
  // Trailing garbage after a well-formed rate.
  EXPECT_THROW(f.configure("encode=0.5junk"), ConfigError);
  // Bare / non-numeric / negative xN count suffixes.
  EXPECT_THROW(f.configure("encode=0.5x"), ConfigError);
  EXPECT_THROW(f.configure("encode=0.5xabc"), ConfigError);
  EXPECT_THROW(f.configure("encode=0.5x-1"), ConfigError);
  EXPECT_THROW(f.configure("encode=0.5x3junk"), ConfigError);
  // Bare / non-numeric / negative :ms suffixes.
  EXPECT_THROW(f.configure("stall=0.1:"), ConfigError);
  EXPECT_THROW(f.configure("stall=0.1:abc"), ConfigError);
  EXPECT_THROW(f.configure("stall=0.1:-5"), ConfigError);
  // Seed must be a clean uint64.
  EXPECT_THROW(f.configure("seed="), ConfigError);
  EXPECT_THROW(f.configure("seed=12junk"), ConfigError);
  EXPECT_THROW(f.configure("seed=-1"), ConfigError);
  // Non-finite probabilities (stod would happily accept these).
  EXPECT_THROW(f.configure("encode=nan"), ConfigError);
  EXPECT_THROW(f.configure("encode=inf"), ConfigError);
  // Out-of-range probability on the new point too.
  EXPECT_THROW(f.configure("shardkill=2.0"), ConfigError);
  // Unknown point name.
  EXPECT_THROW(f.configure("shardskill=0.5"), ConfigError);
  // A failed configure never arms, and the spec stays empty.
  EXPECT_FALSE(f.enabled());
  EXPECT_EQ(f.spec(), "");
  // A good spec still arms afterwards (no poisoned state left behind).
  f.configure("shardkill=0.5x2");
  EXPECT_TRUE(f.enabled());
}

TEST_F(FaultTest, ShardKillPointParsesAndCaps) {
  EXPECT_STREQ(fault_point_name(FaultPoint::kShardKill), "shardkill");
  FaultInjector& f = FaultInjector::global();
  f.configure("shardkill=1x2");
  EXPECT_TRUE(f.should_fail(FaultPoint::kShardKill));
  EXPECT_TRUE(f.should_fail(FaultPoint::kShardKill));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(f.should_fail(FaultPoint::kShardKill));
  }
  EXPECT_EQ(f.injected(FaultPoint::kShardKill), 2u);
  // The other points were never armed by this spec.
  EXPECT_FALSE(f.should_fail(FaultPoint::kEncode));
}

TEST_F(FaultTest, ScheduleIsDeterministicPerSeed) {
  FaultInjector& f = FaultInjector::global();
  constexpr int kDraws = 200;

  const auto draw_schedule = [&](const std::string& spec) {
    f.configure(spec);
    std::vector<bool> schedule;
    for (int i = 0; i < kDraws; ++i) {
      schedule.push_back(f.should_fail(FaultPoint::kEncode));
    }
    return schedule;
  };

  const std::vector<bool> a = draw_schedule("seed=7,encode=0.5");
  const uint64_t injected_a = f.injected(FaultPoint::kEncode);
  const std::vector<bool> b = draw_schedule("seed=7,encode=0.5");
  EXPECT_EQ(a, b) << "same spec must replay the same fault schedule";
  EXPECT_EQ(f.injected(FaultPoint::kEncode), injected_a);
  EXPECT_GT(injected_a, 0u);
  EXPECT_LT(injected_a, static_cast<uint64_t>(kDraws));

  const std::vector<bool> c = draw_schedule("seed=8,encode=0.5");
  EXPECT_NE(a, c) << "different seeds must produce different schedules";
}

TEST_F(FaultTest, CountCapLimitsInjections) {
  FaultInjector& f = FaultInjector::global();
  f.configure("encode=1x2");
  EXPECT_TRUE(f.should_fail(FaultPoint::kEncode));
  EXPECT_TRUE(f.should_fail(FaultPoint::kEncode));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(f.should_fail(FaultPoint::kEncode));
  }
  EXPECT_EQ(f.injected(FaultPoint::kEncode), 2u);
  EXPECT_EQ(f.injected_total(), 2u);
  // Other points were never armed.
  EXPECT_FALSE(f.should_fail(FaultPoint::kLink));
}

TEST_F(FaultTest, EvictFaultRemovesUnpinnedEntryOnly) {
  SharedModuleStore store(/*device=*/0, /*host=*/0);
  EncodedModule m;
  m.n_tokens = 4;
  m.kv_dim = 4;
  m.n_layers = 2;
  store.insert("pinned", m);
  store.insert("cold", m);
  ASSERT_TRUE(store.pin("pinned"));

  FaultInjector::global().configure("evict=1");
  // Pinned entries are exempt: the fault poll is skipped entirely (no draw
  // consumed), exactly like real eviction.
  EXPECT_TRUE(store.find("pinned"));
  EXPECT_EQ(FaultInjector::global().injected(FaultPoint::kEvict), 0u);
  // Unpinned entries are spuriously evicted: the find misses.
  EXPECT_FALSE(store.find("cold"));
  EXPECT_FALSE(store.contains("cold"));
  EXPECT_EQ(FaultInjector::global().injected(FaultPoint::kEvict), 1u);
}

#endif  // PC_FAULTS_ENABLED

// ---------------------------------------------------------------------------
// Degradation path: serve_full_prefill bitwise equality

class DegradedServeTest : public FaultTest {
 protected:
  DegradedServeTest()
      : workload_(7),
        model_(make_induction_model({workload_.vocab().size(), 256})),
        engine_(model_, workload_.tokenizer()) {}

  void expect_bitwise(const std::string& prompt) {
    const GenerateOptions opts = ask_options(workload_);
    const ServeResult cached = engine_.serve(prompt, opts);
    const ServeResult full = engine_.serve_full_prefill(prompt, opts);
    EXPECT_EQ(full.tokens, cached.tokens) << prompt;
    EXPECT_TRUE(full.degraded);
    EXPECT_FALSE(cached.degraded);
    EXPECT_EQ(full.ttft.cached_tokens, 0)
        << "degraded serving must not touch the module store";
  }

  AccuracyWorkload workload_;
  Model model_;
  PromptCacheEngine engine_;
};

TEST_F(DegradedServeTest, MultiModulePromptMatches) {
  engine_.load_schema(kSchema);
  for (const char* prompt : kPrompts) expect_bitwise(prompt);
  EXPECT_EQ(engine_.stats().degraded_serves,
            static_cast<uint64_t>(kNumPrompts));
}

TEST_F(DegradedServeTest, ParameterizedPromptMatches) {
  engine_.load_schema(R"(
    <schema name="p">
      <module name="fact">w00 w01 q05 <param name="vals" len="4"/> w02</module>
      <module name="doc">w03 q06 a12 a13 . w04</module>
    </schema>)");
  expect_bitwise(
      R"(<prompt schema="p"><fact vals="a20 a21 ."/> question: q05</prompt>)");
  expect_bitwise(
      R"(<prompt schema="p"><doc/><fact vals="a20 a21 ."/> question: q06</prompt>)");
}

TEST_F(DegradedServeTest, ScaffoldPromptMatches) {
  engine_.load_schema(R"(
    <schema name="s">
      <module name="parta">w00 w01 q05 a10</module>
      <module name="partb">a11 . w02 w03</module>
    </schema>)");
  engine_.add_scaffold("s", {"parta", "partb"});
  expect_bitwise(
      R"(<prompt schema="s"><parta/><partb/> question: q05</prompt>)");
}

TEST_F(DegradedServeTest, AllCachedPromptUsesKickoffToken) {
  engine_.load_schema(kSchema);
  // No uncached suffix at all: generation must kick off identically.
  expect_bitwise(R"(<prompt schema="c"><d1/><d2/></prompt>)");
}

TEST_F(DegradedServeTest, ExpiredTokenCancelsDegradedServe) {
  engine_.load_schema(kSchema);
  GenerateOptions opts = ask_options(workload_);
  CancellationToken token = CancellationToken::manual();
  token.cancel();
  opts.cancel = token;
  EXPECT_THROW(engine_.serve_full_prefill(kPrompts[0], opts), CancelledError);
}

// ---------------------------------------------------------------------------
// Server: retry, degrade, chaos

struct ServerHarness {
  explicit ServerHarness(int seed = 7)
      : workload(seed),
        model(make_induction_model({workload.vocab().size(), 256})) {}

  std::vector<std::vector<TokenId>> reference_tokens() {
    FaultInjector::global().disable();
    PromptCacheEngine reference(model, workload.tokenizer());
    reference.load_schema(kSchema);
    std::vector<std::vector<TokenId>> expected;
    for (const char* prompt : kPrompts) {
      expected.push_back(
          reference.serve(prompt, ask_options(workload)).tokens);
    }
    return expected;
  }

  AccuracyWorkload workload;
  Model model;
};

#if PC_FAULTS_ENABLED

TEST_F(FaultTest, TransientEncodeFaultsRetrySuccessfully) {
  ServerHarness h;
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  cfg.engine.eager_encode = false;  // encode at serve time, under faults
  Server server(h.model, h.workload.tokenizer(), cfg);
  const std::vector<std::vector<TokenId>> expected = h.reference_tokens();

  // The first two encode attempts fail; with max_retries = 2 the third
  // serve attempt succeeds — kOk, two retries, no degradation.
  FaultInjector::global().configure("encode=1x2");
  server.submit(kPrompts[0], ask_options(h.workload));
  const std::vector<ServerResponse> responses = server.drain();
  FaultInjector::global().disable();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk) << responses[0].detail;
  EXPECT_EQ(responses[0].retries, 2);
  EXPECT_EQ(responses[0].result.tokens, expected[0]);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.degraded, 0u);
  check_accounting(stats);
}

TEST_F(FaultTest, ExhaustedRetriesDegradeToFullPrefill) {
  ServerHarness h;
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  cfg.engine.eager_encode = false;
  Server server(h.model, h.workload.tokenizer(), cfg);
  const std::vector<std::vector<TokenId>> expected = h.reference_tokens();

  // Every encode fails: all 1 + max_retries serve attempts throw, then the
  // worker degrades — full prefill never touches the store, so it cannot
  // be faulted by encode failures.
  FaultInjector::global().configure("encode=1");
  server.submit(kPrompts[1], ask_options(h.workload));
  const std::vector<ServerResponse> responses = server.drain();
  FaultInjector::global().disable();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kDegraded)
      << responses[0].detail;
  EXPECT_EQ(responses[0].retries, 2);
  EXPECT_EQ(responses[0].result.tokens, expected[1]);
  EXPECT_TRUE(responses[0].result.degraded);
  EXPECT_TRUE(responses[0].deadline_met);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  check_accounting(stats);
}

TEST_F(FaultTest, ChaosServingKeepsFullAvailability) {
  ServerHarness h;
  const std::vector<std::vector<TokenId>> expected = h.reference_tokens();

  // The CI smoke drives this test with an env spec; locally a fixed seed
  // exercises all four serving-path fault points. No deadlines, so every
  // fault is degradable and availability must be exactly 1.0.
  const char* env = std::getenv("PC_FAULTS");
  const std::string spec =
      env != nullptr && *env != '\0'
          ? std::string(env)
          : "seed=1234,encode=0.3,link=0.25,evict=0.3,stall=0.15:5";
  FaultInjector::global().configure(spec);

  constexpr int kRequests = 36;
  SharedModuleStore store(/*device=*/0, /*host=*/0);
  ServerConfig cfg;
  cfg.n_workers = 4;
  cfg.schemas = {kSchema};
  cfg.link.latency_s = 0.002;  // nonzero so link faults are polled
  {
    Server server(h.model, h.workload.tokenizer(), store, cfg);
    for (int i = 0; i < kRequests; ++i) {
      server.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts],
                    ask_options(h.workload));
    }
    const std::vector<ServerResponse> responses = server.drain();
    const uint64_t injected = FaultInjector::global().injected_total();
    FaultInjector::global().disable();

    ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
    for (int i = 0; i < kRequests; ++i) {
      const ServerResponse& r = responses[static_cast<size_t>(i)];
      EXPECT_EQ(r.id, static_cast<uint64_t>(i));
      EXPECT_TRUE(is_served(r.status))
          << "id " << r.id << " " << to_string(r.status) << ": " << r.detail;
      // Bitwise equality with the fault-free run: degradation changes the
      // latency, never the tokens.
      EXPECT_EQ(r.result.tokens, expected[static_cast<size_t>(i) % kNumPrompts])
          << "id " << r.id << " status " << to_string(r.status);
      check_status_invariants(r);
    }

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(stats.completed, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_EQ(stats.timeouts, 0u);
    EXPECT_EQ(stats.failed, 0u);
    check_accounting(stats);
    if (env == nullptr || *env == '\0') {
      // The fixed-seed spec is known to inject: the run above was a real
      // chaos run, not a silently clean one.
      EXPECT_GT(injected, 0u);
    }
  }
}

#endif  // PC_FAULTS_ENABLED

// ---------------------------------------------------------------------------
// Deadlines

TEST_F(FaultTest, OverrideDeadlineBeatsDefaultAndShedsWhileQueued) {
  ServerHarness h;
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  cfg.default_deadline_ms = 10000;  // generous default: always met
  cfg.link.latency_s = 0.05;        // each serve holds the worker ~50 ms
  Server server(h.model, h.workload.tokenizer(), cfg);
  const GenerateOptions opts = ask_options(h.workload);

  // First request occupies the worker (default deadline, easily met); the
  // second's 1 ms override expires while it waits and must shed at dequeue
  // — before any service work.
  server.submit(kPrompts[0], opts);
  server.submit(kPrompts[1], opts, /*deadline_ms=*/1);
  const std::vector<ServerResponse> responses = server.drain();

  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk) << responses[0].detail;
  EXPECT_TRUE(responses[0].deadline_met);
  EXPECT_EQ(responses[1].status, ServeStatus::kShed) << responses[1].detail;
  check_status_invariants(responses[0]);
  check_status_invariants(responses[1]);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.deadline_misses, 1u);
  check_accounting(stats);
}

#if PC_FAULTS_ENABLED

TEST_F(FaultTest, DeadlineExpiryMidServiceTimesOut) {
  ServerHarness h;
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  Server server(h.model, h.workload.tokenizer(), cfg);

  // An injected straggler stall (120 ms) freezes the worker after dequeue;
  // the 25 ms deadline expires during it and the serve is cancelled.
  FaultInjector::global().configure("stall=1x1:120");
  server.submit(kPrompts[0], ask_options(h.workload), /*deadline_ms=*/25);
  const std::vector<ServerResponse> responses = server.drain();
  FaultInjector::global().disable();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kTimeout)
      << responses[0].detail;
  check_status_invariants(responses[0]);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.deadline_misses, 1u);
  check_accounting(stats);
}

TEST_F(FaultTest, DeadlineExpiryStopsRetryLadderImmediately) {
  // With every encode faulted and a backoff schedule whose single
  // un-capped sleep (10 s) dwarfs the deadline (60 ms), the retry loop
  // must stop the moment the deadline expires — the sleep is capped at
  // the remaining budget and an expired token short-circuits the next
  // attempt — instead of serving out the exponential ladder.
  ServerHarness h;
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  cfg.engine.eager_encode = false;  // encode at serve time, under faults
  cfg.retry.max_retries = 8;
  cfg.retry.backoff_base_ms = 10000;
  cfg.retry.backoff_max_ms = 10000;
  Server server(h.model, h.workload.tokenizer(), cfg);

  FaultInjector::global().configure("encode=1");
  const auto t0 = std::chrono::steady_clock::now();
  server.submit(kPrompts[0], ask_options(h.workload), /*deadline_ms=*/60);
  const std::vector<ServerResponse> responses = server.drain();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  FaultInjector::global().disable();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kTimeout)
      << responses[0].detail;
  EXPECT_FALSE(responses[0].deadline_met);
  check_status_invariants(responses[0]);
  // One un-capped backoff alone would be 10 s; generous slack for CI.
  EXPECT_LT(elapsed_ms, 5000.0)
      << "retries must stop at the deadline, not serve out the ladder";
  check_accounting(server.stats());
}

#endif  // PC_FAULTS_ENABLED

// ---------------------------------------------------------------------------
// Retry backoff schedule (always compiled — no injector involved)

TEST_F(FaultTest, RetryBackoffGoldenSchedule) {
  // The deterministic jitter schedule is part of the serving contract
  // (identical replay across lanes and runs); pin it. Values are
  // retry_backoff_ms with the default policy (base 0.5 ms, cap 20 ms).
  const RetryPolicy policy;
  const double golden[3][4] = {
      // id=1
      {0.33800628128297117, 0.87684244477711237, 2.9626587727260931,
       2.662955055612493},
      // id=7
      {0.49007477255529996, 0.50241657487984059, 1.5451060779277386,
       5.5127452083350956},
      // id=42
      {0.52704875675699181, 0.68043535162983715, 1.2784753703219474,
       2.2612623134725847},
  };
  const uint64_t ids[3] = {1, 7, 42};
  for (int i = 0; i < 3; ++i) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      EXPECT_DOUBLE_EQ(retry_backoff_ms(policy, ids[i], attempt),
                       golden[i][attempt])
          << "id " << ids[i] << " attempt " << attempt;
    }
  }
  // Envelope: jitter scales the capped exponential by [0.5, 1.5).
  for (uint64_t id = 0; id < 200; ++id) {
    for (int attempt = 0; attempt < 10; ++attempt) {
      const double base = std::min(
          policy.backoff_base_ms * static_cast<double>(1ULL << attempt),
          policy.backoff_max_ms);
      const double ms = retry_backoff_ms(policy, id, attempt);
      EXPECT_GE(ms, 0.5 * base);
      EXPECT_LT(ms, 1.5 * base);
    }
  }
}

TEST_F(FaultTest, BacklogShedsAtSubmitWhenDeadlineUnmeetable) {
  ServerHarness h;
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  cfg.link.latency_s = 0.08;  // ~80 ms per serve
  Server server(h.model, h.workload.tokenizer(), cfg);
  const GenerateOptions opts = ask_options(h.workload);

  // Teach the EWMA the service time, then overload: with one ~80 ms
  // request already queued, a 10 ms deadline is predictably unmeetable and
  // must be rejected at submit (worker == -1: it never reached one).
  for (int i = 0; i < 3; ++i) server.submit(kPrompts[0], opts);
  (void)server.drain();

  server.submit(kPrompts[0], opts);  // occupies the worker
  server.submit(kPrompts[1], opts);  // sits in the queue
  const uint64_t shed_id = server.submit(kPrompts[2], opts,
                                         /*deadline_ms=*/10);
  const std::vector<ServerResponse> responses = server.drain();

  ASSERT_EQ(responses.size(), 3u);
  const ServerResponse& shed = responses.back();
  EXPECT_EQ(shed.id, shed_id);
  EXPECT_EQ(shed.status, ServeStatus::kShed) << shed.detail;
  EXPECT_EQ(shed.worker, -1);
  check_status_invariants(shed);
  EXPECT_GE(server.stats().shed, 1u);
}

// ---------------------------------------------------------------------------
// Shutdown race

TEST_F(FaultTest, BlockedSubmitThrowsWhenServerStops) {
  ServerHarness h;
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.queue_capacity = 1;
  cfg.schemas = {kSchema};
  cfg.link.latency_s = 0.2;  // the worker holds each request ~200 ms
  Server server(h.model, h.workload.tokenizer(), cfg);
  const GenerateOptions opts = ask_options(h.workload);

  server.submit(kPrompts[0], opts);
  // Let the worker pop the first request, then fill the 1-slot queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.submit(kPrompts[1], opts);

  std::atomic<bool> threw{false};
  std::atomic<bool> blocked{false};
  std::thread submitter([&] {
    try {
      blocked.store(true);
      server.submit(kPrompts[2], opts);  // blocks: queue is at capacity
    } catch (const Error&) {
      threw.store(true);
    }
  });
  while (!blocked.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // stop() must wake the blocked submitter, which observes the shutdown
  // and throws instead of sleeping forever (or silently dropping the
  // request with its id already handed out).
  server.stop();
  submitter.join();
  EXPECT_TRUE(threw.load());

  // The two accepted requests were still served before the pool exited,
  // and the accounting has no trace of the rejected submission.
  const std::vector<ServerResponse> responses = server.drain();
  ASSERT_EQ(responses.size(), 2u);
  for (const ServerResponse& r : responses) {
    EXPECT_EQ(r.status, ServeStatus::kOk) << r.detail;
  }
  EXPECT_EQ(server.stats().submitted, 2u);
  check_accounting(server.stats());
}

TEST_F(FaultTest, SubmitOnStoppedServerThrows) {
  ServerHarness h;
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  Server server(h.model, h.workload.tokenizer(), cfg);
  server.stop();
  EXPECT_THROW(server.submit(kPrompts[0], ask_options(h.workload)), Error);
}

// ---------------------------------------------------------------------------
// Corrupt-record faults during load

#if PC_FAULTS_ENABLED

TEST_F(FaultTest, InjectedCorruptRecordIsSkippedUnderRecoveryPolicy) {
  ServerHarness h;
  const std::string path = ::testing::TempDir() + "pc_fault_modules.bin";
  {
    PromptCacheEngine writer(h.model, h.workload.tokenizer());
    writer.load_schema(kSchema);
    ASSERT_EQ(writer.save_modules(path), 4u);
  }

  EngineConfig cfg;
  cfg.eager_encode = false;

  // Strict policy: the injected checksum failure aborts the whole load.
  {
    PromptCacheEngine reader(h.model, h.workload.tokenizer(), cfg);
    reader.load_schema(kSchema);
    FaultInjector::global().configure("corrupt=1x1");
    EXPECT_THROW(reader.load_modules(path), Error);
  }

  // Recovery policy: the corrupt record is skipped, the rest load, and the
  // skipped module is just a cache miss at serve time.
  PromptCacheEngine reader(h.model, h.workload.tokenizer(), cfg);
  reader.load_schema(kSchema);
  FaultInjector::global().configure("corrupt=1x1");
  const PromptCacheEngine::LoadReport report =
      reader.load_modules(path, PromptCacheEngine::LoadPolicy::kSkipCorrupt);
  FaultInjector::global().disable();
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.loaded, 3u);

  const ServeResult r = reader.serve(kPrompts[0], ask_options(h.workload));
  PromptCacheEngine reference(h.model, h.workload.tokenizer());
  reference.load_schema(kSchema);
  EXPECT_EQ(r.tokens,
            reference.serve(kPrompts[0], ask_options(h.workload)).tokens);
  std::remove(path.c_str());
}

#endif  // PC_FAULTS_ENABLED

}  // namespace
}  // namespace pc
