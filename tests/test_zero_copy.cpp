// Tests for zero-copy serving: bitwise equivalence with the copy path,
// memory-footprint semantics, tail-capacity contracts, pin lifetimes, and
// precision restrictions.
#include <gtest/gtest.h>

#include <numeric>

#include "core/engine.h"
#include "eval/workload.h"
#include "kv/kv_view.h"
#include "kv/quant.h"
#include "model/induction.h"
#include "tensor/ops.h"

namespace pc {
namespace {

class ZeroCopyTest : public ::testing::Test {
 protected:
  ZeroCopyTest()
      : workload_(7),
        model_(make_induction_model({workload_.vocab().size(), 256})) {}

  GenerateOptions answer_options(int max_tokens = 6) const {
    GenerateOptions o;
    o.max_new_tokens = max_tokens;
    o.stop_tokens = {workload_.stop_token()};
    return o;
  }

  static constexpr const char* kSchema = R"(
    <schema name="z">
      <module name="doc1">w00 w01 q05 a10 a11 . w02</module>
      <module name="doc2">w03 w04 q06 a12 a13 . w05</module>
    </schema>)";
  static constexpr const char* kPrompt =
      R"(<prompt schema="z"><doc1/><doc2/> question: q06</prompt>)";

  AccuracyWorkload workload_;
  Model model_;
};

TEST_F(ZeroCopyTest, SegmentedCacheBasics) {
  KVCache module(2, 4);
  const std::vector<int> pos = {3, 4, 5};
  module.append_tokens(pos);
  module.k_row(1, 2)[0] = 42.0f;

  SegmentedKVCache view(2, 4, /*tail_capacity=*/2);
  view.append_borrowed(module, 0, 3);
  EXPECT_EQ(view.size(), 3);
  EXPECT_EQ(view.borrowed_tokens(), 3);
  EXPECT_EQ(view.pos_id(2), 5);
  // Borrowed rows alias the source — no copy happened.
  EXPECT_EQ(view.k_row(1, 2), module.k_row(1, 2));
  EXPECT_FLOAT_EQ(view.k_row(1, 2)[0], 42.0f);

  const std::vector<int> tail_pos = {9};
  const int first = view.append_tokens(tail_pos);
  EXPECT_EQ(first, 3);
  view.k_row_mut(0, 3)[1] = 7.0f;
  EXPECT_FLOAT_EQ(view.k_row(0, 3)[1], 7.0f);
  EXPECT_GT(view.owned_payload_bytes(), 0u);
}

TEST_F(ZeroCopyTest, ContractsAreEnforced) {
  KVCache module(2, 4);
  const std::vector<int> pos = {0, 1};
  module.append_tokens(pos);

  SegmentedKVCache view(2, 4, /*tail_capacity=*/1);
  view.append_borrowed(module, 0, 2);
  EXPECT_THROW(view.k_row_mut(0, 0), ContractViolation);  // borrowed row
  const std::vector<int> one = {5};
  view.append_tokens(one);
  EXPECT_THROW(view.append_tokens(one), ContractViolation);  // tail overflow
  // Borrow-after-own is rejected (pointer table ordering).
  EXPECT_THROW(view.append_borrowed(module, 0, 1), ContractViolation);
  // Geometry mismatch.
  SegmentedKVCache bad(3, 4, 1);
  EXPECT_THROW(bad.append_borrowed(module, 0, 1), ContractViolation);
}

TEST_F(ZeroCopyTest, ForwardMatchesContiguousCacheBitwise) {
  // The same module + suffix computed through both cache representations
  // must agree exactly.
  const std::vector<TokenId> mod_tokens = {7, 8, 20, 30, 31, 9};
  const std::vector<TokenId> suffix = {20};
  std::vector<int> mod_pos(mod_tokens.size());
  std::iota(mod_pos.begin(), mod_pos.end(), 0);
  const std::vector<int> suf_pos = {static_cast<int>(mod_tokens.size())};

  KVCache encoded = model_.make_cache();
  (void)model_.forward(mod_tokens, mod_pos, encoded);

  KVCache copy_cache = model_.make_cache();
  copy_cache.append_copy(encoded);
  const Tensor copy_logits = model_.forward(suffix, suf_pos, copy_cache);

  SegmentedKVCache view(model_.config().n_layers, model_.config().kv_dim(),
                        4);
  view.append_borrowed(encoded, 0, encoded.size());
  const Tensor view_logits = model_.forward(suffix, suf_pos, view);

  EXPECT_EQ(max_abs_diff(copy_logits, view_logits), 0.0f);
}

TEST_F(ZeroCopyTest, ServeMatchesCopyPathExactly) {
  PromptCacheEngine copy_engine(model_, workload_.tokenizer());
  copy_engine.load_schema(kSchema);
  const ServeResult copied = copy_engine.serve(kPrompt, answer_options());

  EngineConfig cfg;
  cfg.zero_copy = true;
  PromptCacheEngine zc_engine(model_, workload_.tokenizer(), cfg);
  zc_engine.load_schema(kSchema);
  const ServeResult borrowed = zc_engine.serve(kPrompt, answer_options());

  EXPECT_EQ(borrowed.tokens, copied.tokens);
  EXPECT_EQ(borrowed.text, "a12 a13");
  // Copy path moves bytes; zero-copy path moves none.
  EXPECT_GT(copied.ttft.bytes_from_host + copied.ttft.bytes_from_device, 0u);
  EXPECT_EQ(borrowed.ttft.bytes_from_host, 0u);
  EXPECT_EQ(borrowed.ttft.bytes_from_device, 0u);
  EXPECT_GT(borrowed.ttft.bytes_zero_copy, 0u);
  EXPECT_EQ(borrowed.ttft.cached_tokens, copied.ttft.cached_tokens);
}

TEST_F(ZeroCopyTest, PinsAreReleasedAfterServe) {
  EngineConfig cfg;
  cfg.zero_copy = true;
  PromptCacheEngine engine(model_, workload_.tokenizer(), cfg);
  engine.load_schema(kSchema);
  (void)engine.serve(kPrompt, answer_options());
  EXPECT_FALSE(engine.store().is_pinned("z::doc1"));
  EXPECT_FALSE(engine.store().is_pinned("z::doc2"));
  // Repeat serves keep working (pin/unpin cycles are balanced).
  const ServeResult again = engine.serve(kPrompt, answer_options());
  EXPECT_EQ(again.text, "a12 a13");
}

TEST_F(ZeroCopyTest, ReducedPrecisionStoresAreRejected) {
  EngineConfig cfg;
  cfg.zero_copy = true;
  cfg.precision = StorePrecision::kFp16;
  PromptCacheEngine engine(model_, workload_.tokenizer(), cfg);
  engine.load_schema(kSchema);
  EXPECT_THROW(engine.serve(kPrompt, answer_options()), ContractViolation);
  engine.release_borrowed_pins();
}

TEST_F(ZeroCopyTest, Q8ZeroCopyServesExactRetrievalWithoutDequant) {
  // Quantized modules are borrowed in place and scored in the int8 domain:
  // retrieval stays exact (the induction gate) and the dequant-on-read
  // counter stays at zero — no fp32 materialization on the hot path.
  EngineConfig q8;
  q8.precision = StorePrecision::kQ8;
  PromptCacheEngine copy_engine(model_, workload_.tokenizer(), q8);
  copy_engine.load_schema(kSchema);
  const ServeResult copied = copy_engine.serve(kPrompt, answer_options());
  EXPECT_EQ(copied.text, "a12 a13");
  // The copy path materializes fp32 rows from the q8 payload — and counts
  // every one of them.
  EXPECT_GT(copy_engine.store().dequant_rows(), 0u);

  EngineConfig zc = q8;
  zc.zero_copy = true;
  PromptCacheEngine zc_engine(model_, workload_.tokenizer(), zc);
  zc_engine.load_schema(kSchema);
  const ServeResult borrowed = zc_engine.serve(kPrompt, answer_options());
  EXPECT_EQ(borrowed.text, "a12 a13");
  EXPECT_EQ(borrowed.tokens, copied.tokens);
  EXPECT_GT(borrowed.ttft.bytes_zero_copy, 0u);
  EXPECT_EQ(borrowed.ttft.bytes_from_host, 0u);
  EXPECT_EQ(zc_engine.store().dequant_rows(), 0u)
      << "zero-copy q8 serving must never dequantize";
}

TEST_F(ZeroCopyTest, Q8StoreResidencyIsTrackedByFormat) {
  EngineConfig q8;
  q8.precision = StorePrecision::kQ8;
  PromptCacheEngine engine(model_, workload_.tokenizer(), q8);
  engine.load_schema(kSchema);
  EXPECT_GT(engine.store().resident_bytes_q8(), 0u);
  EXPECT_EQ(engine.store().resident_bytes_fp32(), 0u);

  EngineConfig fp32;
  fp32.precision = StorePrecision::kFp32;
  PromptCacheEngine fp_engine(model_, workload_.tokenizer(), fp32);
  fp_engine.load_schema(kSchema);
  EXPECT_EQ(fp_engine.store().resident_bytes_q8(), 0u);
  EXPECT_GT(fp_engine.store().resident_bytes_fp32(), 0u);
  // Q8_0 is a quarter of fp32 plus two scales per token-layer.
  EXPECT_LT(engine.store().resident_bytes_q8(),
            fp_engine.store().resident_bytes_fp32() * 3 / 10);
}

TEST_F(ZeroCopyTest, Q4ZeroCopyServesExactRetrievalWithoutDequant) {
  // The sub-byte format borrows packed nibble rows in place and scores them
  // in the int4 domain: retrieval stays exact (the induction gate) and the
  // dequant-on-read counter stays at zero.
  EngineConfig q4;
  q4.precision = StorePrecision::kQ4;
  PromptCacheEngine copy_engine(model_, workload_.tokenizer(), q4);
  copy_engine.load_schema(kSchema);
  const ServeResult copied = copy_engine.serve(kPrompt, answer_options());
  EXPECT_EQ(copied.text, "a12 a13");
  // The copy path materializes fp32 rows from the q4 payload — and counts
  // every one of them.
  EXPECT_GT(copy_engine.store().dequant_rows(), 0u);

  EngineConfig zc = q4;
  zc.zero_copy = true;
  PromptCacheEngine zc_engine(model_, workload_.tokenizer(), zc);
  zc_engine.load_schema(kSchema);
  const ServeResult borrowed = zc_engine.serve(kPrompt, answer_options());
  EXPECT_EQ(borrowed.text, "a12 a13");
  EXPECT_EQ(borrowed.tokens, copied.tokens);
  EXPECT_GT(borrowed.ttft.bytes_zero_copy, 0u);
  EXPECT_EQ(borrowed.ttft.bytes_from_host, 0u);
  EXPECT_EQ(zc_engine.store().dequant_rows(), 0u)
      << "zero-copy q4 serving must never dequantize";
}

TEST_F(ZeroCopyTest, Q4StoreResidencyIsTrackedByFormat) {
  EngineConfig q4;
  q4.precision = StorePrecision::kQ4;
  PromptCacheEngine engine(model_, workload_.tokenizer(), q4);
  engine.load_schema(kSchema);
  EXPECT_GT(engine.store().resident_bytes_q4(), 0u);
  EXPECT_EQ(engine.store().resident_bytes_q8(), 0u);
  EXPECT_EQ(engine.store().resident_bytes_fp32(), 0u);

  EngineConfig fp32;
  fp32.precision = StorePrecision::kFp32;
  PromptCacheEngine fp_engine(model_, workload_.tokenizer(), fp32);
  fp_engine.load_schema(kSchema);
  EXPECT_EQ(fp_engine.store().resident_bytes_q4(), 0u);
  // Q4_0 costs exactly 20 bytes per 32-value block (16 packed + one fp32
  // scale) against 4 bytes per element for fp32. The induction model rounds
  // its width up to the block size, so the identity reduces to the clean
  // 5/32 ratio; it stays exact even for widths whose final block pads.
  const size_t kv = static_cast<size_t>(model_.config().kv_dim());
  const size_t blocks = static_cast<size_t>(q4_blocks(model_.config().kv_dim()));
  EXPECT_EQ(engine.store().resident_bytes_q4() * kv * 4,
            fp_engine.store().resident_bytes_fp32() * blocks * 20);
}

TEST_F(ZeroCopyTest, ManyRequestsShareOneModuleCopy) {
  // The batch-sharing picture (§3.4/§6): N concurrent views over the same
  // modules each own only their tail.
  PromptCacheEngine engine(model_, workload_.tokenizer());
  engine.load_schema(kSchema);
  const pml::PromptBinding binding = engine.bind(kPrompt);

  std::vector<SegmentedKVCache> views;
  size_t owned_total = 0;
  for (int i = 0; i < 8; ++i) {
    views.emplace_back(model_.config().n_layers, model_.config().kv_dim(),
                       16);
    TtftBreakdown ttft;
    (void)engine.assemble_and_prefill(binding, views.back(), &ttft);
    owned_total += views.back().owned_payload_bytes();
  }
  engine.release_borrowed_pins();

  // One contiguous copy of the same prompt for comparison.
  KVCache copy = model_.make_cache();
  TtftBreakdown ttft;
  (void)engine.assemble_and_prefill(binding, copy, &ttft);
  // 8 requests own less memory than 2 full copies would.
  EXPECT_LT(owned_total, 2 * copy.payload_bytes());
}

}  // namespace
}  // namespace pc
