// Cluster sharding chaos suite (docs/INTERNALS.md §14):
//
//   * the placement ring is deterministic (two routers with one config
//     agree on every owner set) and every key gets R distinct owners;
//   * requests route to a live shard owning the largest share of their
//     modules, and owners hold their keys resident from construction;
//   * a sharded fleet emits tokens bitwise-identical to one unsharded
//     Server — with and without batching mode;
//   * cross-shard fetches are charged through the interconnect model and
//     streamed back out of the borrowing shard at delivery;
//   * shard-kill chaos (FaultPoint::kShardKill) with replication R=2 keeps
//     availability at exactly 1.0, tokens bitwise-identical, and
//     pc_shard_kills_total reconciling exactly with injected kills;
//   * a restarted shard comes back empty and replicate_now() re-pins its
//     owned keys from the surviving replicas;
//   * when every replica of a module is down the request degrades to full
//     prefill (same tokens) instead of failing.
//
// Tests configure/disable the injector explicitly, so the suite stays
// deterministic under any ambient PC_FAULTS — except the chaos test, which
// honors an env-provided spec when present (the CI smoke).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "eval/workload.h"
#include "model/induction.h"
#include "sys/fault.h"
#include "sys/shard.h"

namespace pc {
namespace {

constexpr char kSchema[] = R"(
  <schema name="c">
    <module name="d1">w00 w01 q05 a10 a11 . w02</module>
    <module name="d2">w03 q06 a12 a13 . w04</module>
    <module name="d3">w05 w06 q07 a14 a15 . w07</module>
    <module name="d4">w08 q08 a16 a17 . w09</module>
  </schema>)";

const char* const kPrompts[] = {
    R"(<prompt schema="c"><d1/><d2/> question: q05</prompt>)",
    R"(<prompt schema="c"><d1/><d2/> question: q06</prompt>)",
    R"(<prompt schema="c"><d3/><d4/> question: q07</prompt>)",
    R"(<prompt schema="c"><d3/><d4/> question: q08</prompt>)",
    R"(<prompt schema="c"><d1/><d2/><d3/><d4/> question: q07</prompt>)",
    R"(<prompt schema="c"><d2/><d4/> question: q08</prompt>)",
};
constexpr size_t kNumPrompts = std::size(kPrompts);

const std::vector<std::string> kModuleKeys = {"c::d1", "c::d2", "c::d3",
                                              "c::d4"};

GenerateOptions ask_options(const AccuracyWorkload& workload) {
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  opts.stop_tokens = {workload.stop_token()};
  return opts;
}

class ShardTest : public ::testing::Test {
 protected:
  ShardTest()
      : workload_(7),
        model_(make_induction_model({workload_.vocab().size(), 256})) {
    FaultInjector::global().disable();
  }
  ~ShardTest() override { FaultInjector::global().disable(); }

  ShardConfig base_config(int n_shards, int replication) const {
    ShardConfig cfg;
    cfg.n_shards = n_shards;
    cfg.replication = replication;
    cfg.server.n_workers = 2;
    cfg.server.schemas = {kSchema};
    return cfg;
  }

  std::vector<std::vector<TokenId>> reference_tokens() {
    FaultInjector::global().disable();
    PromptCacheEngine reference(model_, workload_.tokenizer());
    reference.load_schema(kSchema);
    std::vector<std::vector<TokenId>> expected;
    for (const char* prompt : kPrompts) {
      expected.push_back(
          reference.serve(prompt, ask_options(workload_)).tokens);
    }
    return expected;
  }

  // Spins until `shard` reports alive (restart is asynchronous on the
  // pump); fails the test after ~5 s.
  void wait_alive(ShardRouter& router, int shard) {
    for (int i = 0; i < 1000; ++i) {
      if (router.shard_alive(shard)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    FAIL() << "shard " << shard << " never restarted";
  }

  AccuracyWorkload workload_;
  Model model_;
};

TEST_F(ShardTest, RingPlacementIsDeterministicAndReplicated) {
  ShardRouter a(model_, workload_.tokenizer(), base_config(4, 2));
  ShardRouter b(model_, workload_.tokenizer(), base_config(4, 2));

  for (const auto& key : kModuleKeys) {
    const std::vector<int> owners = a.module_owners(key);
    EXPECT_EQ(owners, b.module_owners(key))
        << key << ": same config must agree on placement";
    ASSERT_EQ(owners.size(), 2u) << key;
    EXPECT_NE(owners[0], owners[1]) << key << ": owners must be distinct";
    for (int o : owners) {
      EXPECT_GE(o, 0);
      EXPECT_LT(o, 4);
      // Owners pinned their keys resident at construction.
      EXPECT_TRUE(a.shard_has_module(o, key)) << key << " on shard " << o;
    }
  }

  // Synthetic keys spread across the whole fleet: with 64 vnodes/shard no
  // shard is starved of primaries.
  std::vector<int> primaries(4, 0);
  for (int i = 0; i < 200; ++i) {
    ++primaries[static_cast<size_t>(
        a.module_owners("synthetic::" + std::to_string(i))[0])];
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(primaries[static_cast<size_t>(s)], 0) << "shard " << s;
  }
}

TEST_F(ShardTest, RoutesToShardOwningLargestModuleShare) {
  ShardRouter router(model_, workload_.tokenizer(), base_config(4, 2));
  for (const char* prompt : kPrompts) {
    const int target = router.route_shard(prompt);
    ASSERT_GE(target, 0);
    ASSERT_LT(target, 4);
  }
  // A prompt importing only d1 must land on one of d1's owners (its anon
  // siblings tie-break, but d1's owners hold >= as many of the prompt's
  // modules as anyone).
  const std::vector<int> owners = router.module_owners("c::d1");
  // Routing maximizes owned share over ALL the prompt's keys (anonymous
  // modules included), so just assert determinism here.
  const char* p = R"(<prompt schema="c"><d1/> question: q05</prompt>)";
  EXPECT_EQ(router.route_shard(p), router.route_shard(p));
  (void)owners;
}

TEST_F(ShardTest, ShardedServingMatchesUnshardedBitwise) {
  const std::vector<std::vector<TokenId>> expected = reference_tokens();
  ShardRouter router(model_, workload_.tokenizer(), base_config(2, 2));
  constexpr int kRequests = 18;
  for (int i = 0; i < kRequests; ++i) {
    router.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts],
                  ask_options(workload_));
  }
  const std::vector<ShardResponse> responses = router.drain();
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const ShardResponse& r = responses[static_cast<size_t>(i)];
    EXPECT_EQ(r.id, static_cast<uint64_t>(i));
    EXPECT_EQ(r.resp.status, ServeStatus::kOk) << r.resp.detail;
    EXPECT_EQ(r.failovers, 0);
    EXPECT_EQ(r.resp.result.tokens,
              expected[static_cast<size_t>(i) % kNumPrompts])
        << "id " << i;
  }
  const ShardRouterStats stats = router.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.delivered, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kRequests));
  EXPECT_DOUBLE_EQ(stats.availability, 1.0);
  EXPECT_EQ(stats.kills, 0u);
  EXPECT_EQ(stats.failovers, 0u);
  uint64_t routed = 0;
  for (const auto& s : stats.shards) routed += s.routed;
  EXPECT_EQ(routed, static_cast<uint64_t>(kRequests));
}

TEST_F(ShardTest, BatchingModeMatchesUnshardedBitwise) {
  const std::vector<std::vector<TokenId>> expected = reference_tokens();
  ShardConfig cfg = base_config(2, 2);
  cfg.server.batching = true;
  cfg.server.batch.max_batch = 4;
  ShardRouter router(model_, workload_.tokenizer(), cfg);
  for (size_t i = 0; i < kNumPrompts; ++i) {
    router.submit(kPrompts[i], ask_options(workload_));
  }
  const std::vector<ShardResponse> responses = router.drain();
  ASSERT_EQ(responses.size(), kNumPrompts);
  for (size_t i = 0; i < kNumPrompts; ++i) {
    EXPECT_EQ(responses[i].resp.status, ServeStatus::kOk)
        << responses[i].resp.detail;
    EXPECT_EQ(responses[i].resp.result.tokens, expected[i]) << "id " << i;
  }
}

TEST_F(ShardTest, CrossFetchIsChargedAndStreamedBackOut) {
  // R=1: every module lives on exactly one shard, so any multi-module
  // prompt whose owners straddle shards forces cross-fetches.
  ShardConfig cfg = base_config(2, 1);
  cfg.cross_link.latency_s = 0.001;
  ShardRouter router(model_, workload_.tokenizer(), cfg);

  for (size_t i = 0; i < kNumPrompts; ++i) {
    router.submit(kPrompts[i], ask_options(workload_));
  }
  const std::vector<ShardResponse> responses = router.drain();
  for (const auto& r : responses) {
    EXPECT_EQ(r.resp.status, ServeStatus::kOk) << r.resp.detail;
  }

  const ShardRouterStats stats = router.stats();
  EXPECT_GT(stats.cross_fetches, 0u)
      << "R=1 multi-module prompts must fetch across shards";
  EXPECT_GT(stats.cross_fetch_bytes, 0u);

  // Streaming (cache_cross_fetches=false, the default): after the fleet
  // idles, every named module is resident ONLY on its owner.
  for (const auto& key : kModuleKeys) {
    const int owner = router.module_owners(key)[0];
    EXPECT_TRUE(router.shard_has_module(owner, key)) << key;
    EXPECT_FALSE(router.shard_has_module(1 - owner, key))
        << key << " leaked into the non-owner shard";
  }

  // The cross-link stall was actually charged to some response.
  bool any_stalled = false;
  for (const auto& r : responses) any_stalled |= r.resp.stall_ms >= 1.0;
  EXPECT_TRUE(any_stalled) << "cross_link latency must surface as stall";
}

TEST_F(ShardTest, ManualKillFailsOverInflightRequests) {
  const std::vector<std::vector<TokenId>> expected = reference_tokens();
  ShardRouter router(model_, workload_.tokenizer(), base_config(2, 2));
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    router.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts],
                  ask_options(workload_));
    if (i == 6) router.kill_shard(0);
  }
  const std::vector<ShardResponse> responses = router.drain();
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  uint64_t observed_failovers = 0;
  for (int i = 0; i < kRequests; ++i) {
    const ShardResponse& r = responses[static_cast<size_t>(i)];
    EXPECT_TRUE(is_served(r.resp.status))
        << "id " << i << " " << to_string(r.resp.status) << ": "
        << r.resp.detail;
    EXPECT_EQ(r.resp.result.tokens,
              expected[static_cast<size_t>(i) % kNumPrompts])
        << "id " << i << " failovers " << r.failovers;
    observed_failovers += static_cast<uint64_t>(r.failovers);
    if (r.failovers > 0) {
      EXPECT_GE(r.failover_ms, 0.0);
    }
  }
  const ShardRouterStats stats = router.stats();
  EXPECT_EQ(stats.kills, 1u);
  EXPECT_FALSE(stats.shards[0].alive);
  EXPECT_EQ(stats.shards[0].epoch, 1u);
  EXPECT_EQ(stats.failovers, observed_failovers)
      << "pc_shard_failovers_total must reconcile with delivered responses";
  EXPECT_DOUBLE_EQ(stats.availability, 1.0);
}

TEST_F(ShardTest, RestartComesBackEmptyAndReplicateNowHeals) {
  ShardRouter router(model_, workload_.tokenizer(), base_config(2, 2));
  // With n=2, R=2 every shard owns every key.
  for (const auto& key : kModuleKeys) {
    ASSERT_TRUE(router.shard_has_module(0, key));
  }
  router.kill_shard(0);
  router.restart_shard(0);
  wait_alive(router, 0);
  // Epoch moved twice (kill + restart) and the store is empty.
  for (const auto& key : kModuleKeys) {
    EXPECT_FALSE(router.shard_has_module(0, key)) << key;
  }
  const uint64_t healed = router.replicate_now();
  EXPECT_GT(healed, 0u);
  for (const auto& key : kModuleKeys) {
    EXPECT_TRUE(router.shard_has_module(0, key))
        << key << " not re-replicated";
  }
  const ShardRouterStats stats = router.stats();
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_GE(stats.rereplications, healed);
  EXPECT_EQ(stats.shards[0].epoch, 2u);
  EXPECT_TRUE(stats.shards[0].alive);

  // The healed shard serves correctly.
  const std::vector<std::vector<TokenId>> expected = reference_tokens();
  for (size_t i = 0; i < kNumPrompts; ++i) {
    router.submit(kPrompts[i], ask_options(workload_));
  }
  const std::vector<ShardResponse> responses = router.drain();
  for (size_t i = 0; i < kNumPrompts; ++i) {
    EXPECT_TRUE(is_served(responses[i].resp.status));
    EXPECT_EQ(responses[i].resp.result.tokens, expected[i]);
  }
}

TEST_F(ShardTest, AllReplicasDownDegradesToFullPrefillSameTokens) {
  const std::vector<std::vector<TokenId>> expected = reference_tokens();
  // R=1: killing a module's only owner makes it unavailable.
  ShardRouter router(model_, workload_.tokenizer(), base_config(3, 1));
  const int owner = router.module_owners("c::d1")[0];
  router.kill_shard(owner);

  router.submit(kPrompts[0], ask_options(workload_));  // imports d1 + d2
  const std::vector<ShardResponse> responses = router.drain();
  ASSERT_EQ(responses.size(), 1u);
  const ShardResponse& r = responses[0];
  EXPECT_EQ(r.resp.status, ServeStatus::kDegraded)
      << to_string(r.resp.status) << ": " << r.resp.detail;
  EXPECT_EQ(r.resp.result.tokens, expected[0])
      << "degraded serving must stay bitwise-identical";
  const ShardRouterStats stats = router.stats();
  EXPECT_GE(stats.unavailable_degrades, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_DOUBLE_EQ(stats.availability, 1.0);
}

#if PC_FAULTS_ENABLED

TEST_F(ShardTest, ShardKillChaosKeepsAvailabilityAndTokens) {
  const std::vector<std::vector<TokenId>> expected = reference_tokens();

  // The CI smoke drives this with an env spec; locally a fixed seed kills
  // aggressively. R=2 + auto-restart: every kill is survivable, so
  // availability must be exactly 1.0 and every token stream must match the
  // unsharded reference bitwise.
  const char* env = std::getenv("PC_FAULTS");
  const std::string spec = env != nullptr && *env != '\0'
                               ? std::string(env)
                               : "seed=77,shardkill=0.15";
  FaultInjector::global().configure(spec);

  ShardConfig cfg = base_config(3, 2);
  cfg.restart_after_submits = 4;
  constexpr int kRequests = 48;
  uint64_t kills = 0;
  uint64_t observed_failovers = 0;
  {
    ShardRouter router(model_, workload_.tokenizer(), cfg);
    for (int i = 0; i < kRequests; ++i) {
      router.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts],
                    ask_options(workload_));
    }
    const std::vector<ShardResponse> responses = router.drain();
    kills = FaultInjector::global().injected(FaultPoint::kShardKill);
    FaultInjector::global().disable();

    ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
    for (int i = 0; i < kRequests; ++i) {
      const ShardResponse& r = responses[static_cast<size_t>(i)];
      EXPECT_EQ(r.id, static_cast<uint64_t>(i));
      EXPECT_TRUE(is_served(r.resp.status))
          << "id " << i << " " << to_string(r.resp.status) << ": "
          << r.resp.detail;
      EXPECT_EQ(r.resp.result.tokens,
                expected[static_cast<size_t>(i) % kNumPrompts])
          << "id " << i << " status " << to_string(r.resp.status)
          << " failovers " << r.failovers;
      observed_failovers += static_cast<uint64_t>(r.failovers);
    }

    const ShardRouterStats stats = router.stats();
    EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(stats.delivered, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(stats.completed, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(stats.timeouts, 0u);
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_DOUBLE_EQ(stats.availability, 1.0);
    // Exact reconciliation: every injected kill killed a live shard (the
    // point is only polled while a victim exists), and every failover a
    // delivered response reports is counted once.
    EXPECT_EQ(stats.kills, kills);
    uint64_t shard_kills = 0;
    for (const auto& s : stats.shards) shard_kills += s.kills;
    EXPECT_EQ(shard_kills, kills);
    EXPECT_EQ(stats.failovers, observed_failovers);
    const auto slo = router.slo_snapshot();
    EXPECT_DOUBLE_EQ(slo.availability, 1.0);
    EXPECT_FALSE(slo.breached);
    if (env == nullptr || *env == '\0') {
      EXPECT_GT(kills, 0u) << "the fixed seed must inject real kills";
    }
  }
}

#endif  // PC_FAULTS_ENABLED

}  // namespace
}  // namespace pc

