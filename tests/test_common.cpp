// Unit tests for the common runtime: RNG, string utilities, thread pool,
// and error macros.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace pc {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussHasRoughMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gauss();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(3);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(StringUtil, SplitSkipsEmptyPieces) {
  EXPECT_EQ(split("a,,b,", ','), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split("", ',').empty());
}

TEST(StringUtil, SplitWhitespaceHandlesMixed) {
  EXPECT_EQ(split_whitespace("  a\tb\n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtil, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim("\t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("module", "mod"));
  EXPECT_FALSE(starts_with("mod", "module"));
  EXPECT_TRUE(ends_with("prompt.pml", ".pml"));
  EXPECT_FALSE(ends_with("x", "xyz"));
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("x", "", "y"), "x");
}

TEST(StringUtil, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(2.5 * 1024 * 1024 * 1024), "2.50 GiB");
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](size_t b, size_t) {
                                   if (b == 0) throw Error("boom");
                                 }),
               Error);
}

TEST(ErrorMacros, CheckThrowsWithLocation) {
  try {
    PC_CHECK_MSG(1 == 2, "math broke: " << 42);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math broke: 42"),
              std::string::npos);
  }
}

TEST(ErrorMacros, CheckPassesSilently) {
  EXPECT_NO_THROW(PC_CHECK(2 + 2 == 4));
}

}  // namespace
}  // namespace pc
