// Unit tests for the prompt-program -> PML compiler (§3.2.4): the builder's
// output must parse back into the schema structure the program described.
#include <gtest/gtest.h>

#include "pml/prompt_program.h"
#include "pml/schema.h"
#include "tokenizer/tokenizer.h"

namespace pc::pml {
namespace {

Schema parse_back(const std::string& pml) {
  static const Tokenizer tok(Vocab::basic_english());
  static const ChatTemplate tmpl(TemplateStyle::kPlain);
  return Schema::parse(pml, tok, tmpl);
}

TEST(PromptProgram, TextBecomesAnonymousModule) {
  PromptProgram prog("p");
  prog.text("you are a helper");
  const Schema s = parse_back(prog.compile());
  EXPECT_EQ(s.name, "p");
  ASSERT_EQ(s.anonymous_modules.size(), 1u);
  EXPECT_EQ(s.module(s.anonymous_modules[0]).pieces[0].text,
            "you are a helper");
}

TEST(PromptProgram, IfBlockBecomesModule) {
  PromptProgram prog("p");
  prog.if_block("frequent-flyer",
                [](BlockBuilder& b) { b.text("mention the lounge"); });
  const Schema s = parse_back(prog.compile());
  const int mi = s.find_module("frequent-flyer");
  ASSERT_NE(mi, -1);
  EXPECT_EQ(s.module(mi).pieces[0].text, "mention the lounge");
}

TEST(PromptProgram, ChooseBecomesUnion) {
  PromptProgram prog("p");
  prog.choose({{"city-a", "go north"}, {"city-b", "go south"}});
  const Schema s = parse_back(prog.compile());
  ASSERT_EQ(s.unions.size(), 1u);
  ASSERT_EQ(s.unions[0].members.size(), 2u);
  const ModuleNode& a = s.module(s.find_module("city-a"));
  const ModuleNode& b = s.module(s.find_module("city-b"));
  EXPECT_EQ(a.union_id, 0);
  EXPECT_EQ(a.start_pos, b.start_pos);
}

TEST(PromptProgram, ParamCarriesLen) {
  PromptProgram prog("p");
  prog.if_block("plan", [](BlockBuilder& b) {
    b.text("a trip of");
    b.param("duration", 5);
    b.text("days");
  });
  const Schema s = parse_back(prog.compile());
  const ModuleNode& m = s.module(s.find_module("plan"));
  ASSERT_EQ(m.params.size(), 1u);
  EXPECT_EQ(m.params[0].name, "duration");
  EXPECT_EQ(m.params[0].max_len, 5);
  EXPECT_THROW(PromptProgram("x").param("p", 0), ContractViolation);
}

TEST(PromptProgram, CallNestsModules) {
  PromptProgram prog("p");
  prog.if_block("outer", [](BlockBuilder& b) {
    b.text("before");
    b.call("inner", [](BlockBuilder& c) { c.text("nested"); });
    b.text("after");
  });
  const Schema s = parse_back(prog.compile());
  const int outer = s.find_module("outer");
  const int inner = s.find_module("inner");
  ASSERT_NE(inner, -1);
  EXPECT_EQ(s.module(inner).parent, outer);
}

TEST(PromptProgram, ChooseBlocksSupportsStructuredCases) {
  PromptProgram prog("p");
  prog.choose_blocks({{"with-param",
                       [](BlockBuilder& b) {
                         b.text("stay");
                         b.param("nights", 2);
                       }},
                      {"plain", [](BlockBuilder& b) { b.text("day trip"); }}});
  const Schema s = parse_back(prog.compile());
  const ModuleNode& wp = s.module(s.find_module("with-param"));
  EXPECT_EQ(wp.params.size(), 1u);
  EXPECT_EQ(wp.union_id, 0);
}

TEST(PromptProgram, RoleSectionsExpand) {
  PromptProgram prog("p");
  prog.role(ChatRole::kSystem, [](BlockBuilder& b) { b.text("rules"); });
  const std::string pml = prog.compile();
  EXPECT_NE(pml.find("<system>"), std::string::npos);
  const Schema s = parse_back(pml);
  // Expanded through kPlain: "system : rules".
  std::string all;
  for (int mi : s.anonymous_modules) {
    for (const auto& piece : s.module(mi).pieces) all += piece.text + "|";
  }
  EXPECT_NE(all.find("rules"), std::string::npos);
}

TEST(PromptProgram, EscapesSpecialCharacters) {
  PromptProgram prog("p");
  prog.text("use < and > and & carefully");
  const Schema s = parse_back(prog.compile());
  EXPECT_EQ(s.module(s.anonymous_modules[0]).pieces[0].text,
            "use < and > and & carefully");
}

TEST(PromptProgram, ComplexProgramRoundTrips) {
  PromptProgram prog("travel");
  prog.text("you are a travel agent");
  prog.if_block("trip-plan", [](BlockBuilder& b) {
    b.text("plan a trip of");
    b.param("duration", 4);
    b.text("days to");
    b.choose({{"miami", "miami the beach city"},
              {"maui", "maui the island"}});
  });
  const Schema s = parse_back(prog.compile());
  EXPECT_NE(s.find_module("trip-plan"), -1);
  EXPECT_NE(s.find_module("miami"), -1);
  EXPECT_NE(s.find_module("maui"), -1);
  EXPECT_EQ(s.module(s.find_module("miami")).parent,
            s.find_module("trip-plan"));
  EXPECT_EQ(s.unions.size(), 1u);
  EXPECT_GT(s.total_positions, 10);
}

}  // namespace
}  // namespace pc::pml
