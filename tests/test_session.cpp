// Tests for multi-turn chat sessions: cached-context reuse across turns,
// conversation memory (facts stated by the user are retrievable later),
// and position-budget exhaustion.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/session.h"
#include "eval/workload.h"
#include "model/induction.h"

namespace pc {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest()
      : workload_(7),
        model_(make_induction_model({workload_.vocab().size(), 384})),
        engine_(model_, workload_.tokenizer()) {
    engine_.load_schema(R"(
      <schema name="chat">
        <module name="doc1">w00 w01 q05 a10 a11 . w02</module>
        <module name="doc2">w03 w04 q06 a12 a13 . w05</module>
      </schema>)");
  }

  GenerateOptions answer_options() const {
    GenerateOptions o;
    o.max_new_tokens = 5;
    o.stop_tokens = {workload_.stop_token()};
    return o;
  }

  static constexpr const char* kPrompt =
      R"(<prompt schema="chat"><doc1/><doc2/></prompt>)";

  AccuracyWorkload workload_;
  Model model_;
  PromptCacheEngine engine_;
};

TEST_F(SessionTest, AnswersAcrossTurnsFromCachedContext) {
  ChatSession session(engine_, kPrompt, /*wrap_turns=*/false);
  const int base_context = session.context_tokens();
  EXPECT_GT(base_context, 0);

  const auto r1 = session.send("question: q05", answer_options());
  EXPECT_EQ(r1.text, "a10 a11");
  const auto r2 = session.send("question: q06", answer_options());
  EXPECT_EQ(r2.text, "a12 a13");
  EXPECT_EQ(session.turns(), 2);
  // The cache grew with the conversation, not with re-prefills.
  EXPECT_GT(session.context_tokens(), base_context);
  EXPECT_LT(session.context_tokens(), base_context + 64);
}

// Conversation memory: a fact the *user* states in one turn is retrievable
// in a later turn — it lives in the session's KV cache like everything
// else.
TEST_F(SessionTest, RemembersFactsFromEarlierTurns) {
  ChatSession session(engine_, kPrompt, /*wrap_turns=*/false);
  (void)session.send("w06 q09 a20 a21 . w07", answer_options());
  const auto reply = session.send("question: q09", answer_options());
  EXPECT_EQ(reply.text, "a20 a21");
}

TEST_F(SessionTest, TurnsAreCheapAfterTheFirstAssembly) {
  ChatSession session(engine_, kPrompt, /*wrap_turns=*/false);
  (void)session.send("question: q05", answer_options());  // assembly turn
  // A steady-state turn computes ~4 input tokens plus the decode steps; the
  // baseline pays the same decode but re-prefills the entire context, so it
  // must be slower end-to-end. Both sides now run in single-digit
  // milliseconds, so compare medians of 3 — a lone scheduler hiccup on one
  // sample must not decide the ordering.
  std::vector<double> turn_ms, base_ms;
  for (int i = 0; i < 3; ++i) {
    const auto r = session.send("question: q05", answer_options());
    EXPECT_LT(r.input_tokens, 10);
    turn_ms.push_back(r.latency_ms);
    const ServeResult full = engine_.serve_baseline(
        R"(<prompt schema="chat"><doc1/><doc2/> question: q05</prompt>)",
        answer_options());
    base_ms.push_back(full.ttft.total_ms() + full.decode_ms);
  }
  std::sort(turn_ms.begin(), turn_ms.end());
  std::sort(base_ms.begin(), base_ms.end());
  EXPECT_LT(turn_ms[1], base_ms[1]);
}

TEST_F(SessionTest, PositionBudgetIsEnforced) {
  // The induction model's max_pos is 384; long conversations must fail
  // loudly, not corrupt positions.
  ChatSession session(engine_, kPrompt, /*wrap_turns=*/false);
  GenerateOptions opts = answer_options();
  opts.max_new_tokens = 2;
  bool threw = false;
  try {
    for (int i = 0; i < 100; ++i) {
      (void)session.send("w08 w09 w10 w11 w12 w13 w14 w15", opts);
    }
  } catch (const ContractViolation& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("position budget"),
              std::string::npos);
  }
  EXPECT_TRUE(threw);
  EXPECT_GE(session.remaining_positions(), 0);
}

TEST_F(SessionTest, EmptyTurnRejectedWithoutTemplate) {
  ChatSession raw(engine_, kPrompt, /*wrap_turns=*/false);
  EXPECT_THROW(raw.send("", answer_options()), ContractViolation);
  // With template wrapping the role labels alone carry tokens.
  ChatSession wrapped(engine_, kPrompt, /*wrap_turns=*/true);
  const auto r = wrapped.send("", answer_options());
  EXPECT_GE(r.input_tokens, 1);
}

}  // namespace
}  // namespace pc
