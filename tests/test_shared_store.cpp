// SharedModuleStore + Server: the concurrent-serving contracts.
//
//   * single-flight: an encode callback runs at most once per missing key,
//     no matter how many threads need it at once;
//   * refs outlive eviction (memory safety) while pins prevent it
//     (residency) — and pins are reference-counted across borrowers;
//   * a hammering mix of find/ensure/insert/erase/pin under capacity
//     pressure leaves the store consistent (exercised under ASan/UBSan by
//     scripts/check.sh);
//   * N shared-store engines on worker threads — mixed zero-copy and
//     copy-mode — produce bitwise-identical output to a single private
//     engine, while encoding each module exactly once fleet-wide.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/shared_module_store.h"
#include "eval/workload.h"
#include "model/induction.h"
#include "sys/server.h"

namespace pc {
namespace {

// A synthetic payload of a known size: bytes_per_token = kv_dim * 2 *
// n_layers * 4 = 64 bytes with the dims below.
EncodedModule make_payload(int n_tokens) {
  EncodedModule m;
  m.n_tokens = n_tokens;
  m.kv_dim = 4;
  m.n_layers = 2;
  return m;
}

TEST(SharedModuleStore, SingleFlightEncodesOnce) {
  SharedModuleStore store(/*device=*/0, /*host=*/0);
  constexpr int kThreads = 6;
  std::atomic<int> encodes{0};
  std::vector<SharedModuleStore::ModuleRef> refs(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      refs[static_cast<size_t>(t)] = store.ensure("k", [&] {
        encodes.fetch_add(1);
        // Encoding takes a while: late callers must wait, not re-encode.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return make_payload(8);
      });
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(encodes.load(), 1);
  for (const auto& ref : refs) {
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref->n_tokens, 8);
    // Everyone resolved to the one resident payload.
    EXPECT_EQ(ref.get(), refs[0].get());
  }
  EXPECT_EQ(store.stats().insertions, 1u);
  EXPECT_EQ(store.stats().misses, 1u);  // only the leader counts the miss
}

TEST(SharedModuleStore, FailedLeaderHandsOffToWaiter) {
  SharedModuleStore store(0, 0);
  std::atomic<int> attempts{0};
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      try {
        auto ref = store.ensure("k", [&]() -> EncodedModule {
          if (attempts.fetch_add(1) == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            throw Error("first encode fails");
          }
          return make_payload(4);
        });
        if (ref) successes.fetch_add(1);
      } catch (const Error&) {
      }
    });
  }
  for (auto& th : threads) th.join();
  // The failed leader propagated its exception; some later caller became
  // the next leader and the key ended up resident.
  EXPECT_GE(attempts.load(), 2);
  EXPECT_EQ(successes.load(), 3);
  EXPECT_TRUE(store.contains("k"));
}

TEST(SharedModuleStore, RefsKeepEvictedModulesAlive) {
  // One shard, room for exactly one 8-token payload in each tier.
  SharedModuleStore store(/*device=*/512, /*host=*/512, /*n_shards=*/1);
  store.insert("a", make_payload(8));
  SharedModuleStore::ModuleRef ref = store.find("a");
  ASSERT_TRUE(ref);

  store.insert("b", make_payload(8));  // a demotes to host
  store.insert("c", make_payload(8));  // a (cold, unpinned) is evicted
  EXPECT_FALSE(store.contains("a"));
  // The ref still dereferences safely: shared ownership outlives eviction.
  EXPECT_EQ(ref->n_tokens, 8);
}

TEST(SharedModuleStore, PinsAreRefCountedAndBlockEviction) {
  SharedModuleStore store(/*device=*/512, /*host=*/512, /*n_shards=*/1);
  store.insert("a", make_payload(8));
  ASSERT_TRUE(store.find("a", /*and_pin=*/true));
  ASSERT_TRUE(store.pin("a"));  // second borrower
  EXPECT_EQ(store.pin_count("a"), 2);

  // Eviction pressure cannot touch the pinned entry; with both tiers full
  // of unevictable bytes the insert must fail loudly.
  store.insert("b", make_payload(8));  // lands in host
  ASSERT_TRUE(store.pin("b"));
  EXPECT_THROW(store.insert("c", make_payload(8)), CacheError);
  EXPECT_TRUE(store.contains("a"));

  EXPECT_TRUE(store.unpin("a"));
  EXPECT_TRUE(store.is_pinned("a"));  // one borrower remains
  EXPECT_TRUE(store.unpin("a"));
  EXPECT_FALSE(store.is_pinned("a"));
  EXPECT_FALSE(store.unpin("a"));  // count never goes negative

  store.insert("c", make_payload(8));  // now a is evictable
  EXPECT_FALSE(store.contains("a"));
}

TEST(SharedModuleStore, ReplaceCarriesPinCountAndKeepsOldPayloadAlive) {
  SharedModuleStore store(0, 0, 1);
  store.insert("a", make_payload(8));
  auto old_ref = store.find("a", /*and_pin=*/true);
  store.insert("a", make_payload(16));  // replace while borrowed
  EXPECT_EQ(old_ref->n_tokens, 8);      // borrower's payload is unchanged
  EXPECT_EQ(store.pin_count("a"), 1);   // pin carried to the new entry
  auto new_ref = store.find("a");
  EXPECT_EQ(new_ref->n_tokens, 16);
  EXPECT_TRUE(store.unpin("a"));
}

TEST(SharedModuleStore, ConcurrentHammerStaysConsistent) {
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  constexpr int kKeys = 12;
  // Tight tiers: ~6KB total vs up to 12 × (4..11 tokens × 64B) resident —
  // constant eviction/demotion churn across 2 shards.
  SharedModuleStore store(/*device=*/2048, /*host=*/4096, /*n_shards=*/2);

  auto key_of = [](int k) { return "key" + std::to_string(k); };
  auto tokens_of = [](int k) { return 4 + (k % 8); };

  std::atomic<int> encodes{0};
  std::atomic<int> cache_errors{0};
  std::atomic<int> bad_payloads{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int k = (i * 7 + t * 3) % kKeys;
        const std::string key = key_of(k);
        try {
          switch (i % 5) {
            case 0: {  // lookup-or-encode, verify content through the ref
              auto ref = store.ensure(key, [&] {
                encodes.fetch_add(1);
                return make_payload(tokens_of(k));
              });
              if (!ref || ref->n_tokens != tokens_of(k)) bad_payloads++;
              break;
            }
            case 1: {  // pinned borrow, balanced release
              auto ref = store.find(key, /*and_pin=*/true);
              if (ref) {
                if (ref->n_tokens != tokens_of(k)) bad_payloads++;
                // unpin may return false: a concurrent erase drops the
                // entry pins and all (the ref stays valid regardless).
                (void)store.unpin(key);
              }
              break;
            }
            case 2:
              store.insert(key, make_payload(tokens_of(k)));
              break;
            case 3:
              store.erase(key);
              break;
            default:
              (void)store.promote(key, ModuleLocation::kDeviceMemory);
              break;
          }
        } catch (const CacheError&) {
          cache_errors.fetch_add(1);  // legitimate under this much pressure
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(bad_payloads.load(), 0);
  // Every pin was released; nothing is left unevictable.
  std::vector<std::string> keys;
  size_t resident = 0;
  store.for_each([&](const std::string& key, const EncodedModule& m,
                     ModuleLocation) {
    keys.push_back(key);
    resident += m.payload_bytes();
  });
  for (const auto& key : keys) EXPECT_EQ(store.pin_count(key), 0) << key;
  // Tier accounting matches the resident payloads exactly.
  EXPECT_EQ(resident, store.resident_bytes());
  EXPECT_LE(store.usage(ModuleLocation::kDeviceMemory).used_bytes, 2048u);
  EXPECT_LE(store.usage(ModuleLocation::kHostMemory).used_bytes, 4096u);
}

// ---------------------------------------------------------------------------
// Engine + Server integration over a real model.

constexpr char kSchema[] = R"(
  <schema name="c">
    <module name="d1">w00 w01 q05 a10 a11 . w02</module>
    <module name="d2">w03 q06 a12 a13 . w04</module>
    <module name="d3">w05 w06 q07 a14 a15 . w07</module>
    <module name="d4">w08 q08 a16 a17 . w09</module>
  </schema>)";

struct Ask {
  const char* prompt;
  int expect_modules;  // modules the prompt imports
};

const Ask kAsks[] = {
    {R"(<prompt schema="c"><d1/><d2/> question: q05</prompt>)", 2},
    {R"(<prompt schema="c"><d1/><d2/> question: q06</prompt>)", 2},
    {R"(<prompt schema="c"><d3/><d4/> question: q07</prompt>)", 2},
    {R"(<prompt schema="c"><d3/><d4/> question: q08</prompt>)", 2},
    {R"(<prompt schema="c"><d1/><d2/><d3/><d4/> question: q07</prompt>)", 4},
    {R"(<prompt schema="c"><d2/><d4/> question: q08</prompt>)", 2},
};

GenerateOptions ask_options(const AccuracyWorkload& workload) {
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  opts.stop_tokens = {workload.stop_token()};
  return opts;
}

TEST(SharedStoreServing, SharedServeMatchesSingleEngineBitwise) {
  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 256});
  const GenerateOptions opts = ask_options(workload);

  // Reference: one private engine, unlimited store, plain copy serving.
  PromptCacheEngine reference(model, workload.tokenizer());
  reference.load_schema(kSchema);
  std::vector<std::vector<TokenId>> expected;
  for (const Ask& ask : kAsks) {
    expected.push_back(reference.serve(ask.prompt, opts).tokens);
  }
  size_t module_bytes = 0;
  reference.store().for_each(
      [&](const std::string&, const EncodedModule& m, ModuleLocation) {
        module_bytes += m.payload_bytes();
      });
  const size_t n_modules = reference.store().size();

  // Shared store under device pressure (demotion churn): 4 workers, half
  // zero-copy, each serving every prompt several times.
  SharedModuleStore store(/*device=*/module_bytes * 2 / 5, /*host=*/0,
                          /*n_shards=*/2);
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::unique_ptr<PromptCacheEngine>> engines(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        EngineConfig cfg;
        cfg.zero_copy = t % 2 == 0;
        engines[static_cast<size_t>(t)] = std::make_unique<PromptCacheEngine>(
            model, workload.tokenizer(), store, cfg);
        PromptCacheEngine& engine = *engines[static_cast<size_t>(t)];
        engine.load_schema(kSchema);  // races: single-flight at startup
        for (int round = 0; round < kRounds; ++round) {
          for (size_t i = 0; i < std::size(kAsks); ++i) {
            const ServeResult r = engine.serve(kAsks[i].prompt, opts);
            if (r.tokens != expected[i]) mismatches.fetch_add(1);
          }
        }
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Encode-once fleet-wide: every insertion was paid by exactly one engine,
  // and with both tiers never evicting (host unlimited), that is exactly
  // one encode per distinct module — not kThreads of them.
  uint64_t encoded = 0;
  for (const auto& e : engines) encoded += e->stats().modules_encoded;
  const ModuleStoreStats stats = store.stats();
  EXPECT_EQ(encoded, static_cast<uint64_t>(n_modules));
  EXPECT_EQ(stats.insertions, static_cast<uint64_t>(n_modules));
  EXPECT_LE(stats.insertions, stats.misses);
  EXPECT_EQ(store.size(), n_modules);

  // No pins survive the serves (zero-copy workers released every borrow).
  std::vector<std::string> keys;
  store.for_each([&](const std::string& key, const EncodedModule&,
                     ModuleLocation) { keys.push_back(key); });
  for (const auto& key : keys) EXPECT_EQ(store.pin_count(key), 0) << key;
}

TEST(SharedStoreServing, ThrashReencodeRestoresEvictedModules) {
  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 256});
  PromptCacheEngine probe(model, workload.tokenizer());
  probe.load_schema(kSchema);
  size_t max_module = 0;
  probe.store().for_each(
      [&](const std::string&, const EncodedModule& m, ModuleLocation) {
        max_module = std::max(max_module, m.payload_bytes());
      });

  // Room for roughly one module total (device holds ~1.5 modules, host is
  // effectively closed at 1 byte): serving a two-module prompt evicts one
  // while retrieving the other, forcing re-encodes inside the TTFT window —
  // which must still serve correctly (refs outlive eviction).
  SharedModuleStore store(/*device=*/max_module * 3 / 2, /*host=*/1,
                          /*n_shards=*/1);
  PromptCacheEngine engine(model, workload.tokenizer(), store);
  engine.load_schema(kSchema);
  const GenerateOptions opts = ask_options(workload);
  const ServeResult r =
      engine.serve(R"(<prompt schema="c"><d1/><d2/> question: q05</prompt>)",
                   opts);
  EXPECT_EQ(r.text, "a10 a11");
  EXPECT_GT(engine.stats().thrash_reencodes, 0u);
  EXPECT_GT(store.stats().evictions, 0u);
}

TEST(SharedStoreServing, ServerServesDrainsAndAggregates) {
  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 256});

  SharedModuleStore store(0, 0);
  ServerConfig cfg;
  cfg.n_workers = 4;
  cfg.queue_capacity = 8;
  cfg.schemas = {kSchema};
  cfg.default_deadline_ms = 60e3;
  cfg.link.latency_s = 1e-3;  // small but nonzero: exercises the stall path
  Server server(model, workload.tokenizer(), store, cfg);

  const GenerateOptions opts = ask_options(workload);
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    server.submit(kAsks[i % std::size(kAsks)].prompt, opts);
  }
  const std::vector<ServerResponse> responses = server.drain();

  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  PromptCacheEngine reference(model, workload.tokenizer());
  reference.load_schema(kSchema);
  for (int i = 0; i < kRequests; ++i) {
    const ServerResponse& r = responses[static_cast<size_t>(i)];
    EXPECT_EQ(r.id, static_cast<uint64_t>(i));  // sorted by submission
    EXPECT_EQ(r.status, ServeStatus::kOk) << r.detail;
    EXPECT_EQ(r.result.tokens,
              reference.serve(kAsks[i % std::size(kAsks)].prompt, opts).tokens);
    EXPECT_GE(r.stall_ms, 1.0);  // the link latency was applied
    EXPECT_TRUE(r.deadline_met);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_TRUE(stats.shared_store);
  EXPECT_GT(stats.throughput_rps, 0.0);
  EXPECT_EQ(stats.ttft.count(), static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.engine_ttft.count(), static_cast<uint64_t>(kRequests));
  // Encode-once: 4 workers, each module encoded exactly once fleet-wide.
  EXPECT_EQ(stats.modules_encoded, store.size());
  EXPECT_GT(stats.store_hit_rate, 0.5);
  EXPECT_EQ(stats.resident_module_bytes, store.resident_bytes());
  EXPECT_EQ(stats.bytes_deduplicated, store.resident_bytes() * 3);
}

TEST(SharedStoreServing, PrivateStoreServerEncodesPerWorker) {
  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 256});

  ServerConfig cfg;
  cfg.n_workers = 2;
  cfg.schemas = {kSchema};
  Server server(model, workload.tokenizer(), cfg);
  const GenerateOptions opts = ask_options(workload);
  for (int i = 0; i < 8; ++i) {
    server.submit(kAsks[i % std::size(kAsks)].prompt, opts);
  }
  const std::vector<ServerResponse> responses = server.drain();
  for (const ServerResponse& r : responses) {
    EXPECT_EQ(r.status, ServeStatus::kOk) << r.detail;
  }

  const ServerStats stats = server.stats();
  EXPECT_FALSE(stats.shared_store);
  // The baseline's cost: every worker encodes (and holds) every module.
  EXPECT_EQ(stats.modules_encoded, 4u * 2u);
  EXPECT_EQ(stats.bytes_deduplicated, 0u);
  EXPECT_GT(stats.resident_module_bytes, 0u);
}

}  // namespace
}  // namespace pc
