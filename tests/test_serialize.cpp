// Tests for module persistence: round trips at every storage precision,
// serving from restored state without re-encoding, and loud failure on
// corrupt input.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "core/engine.h"
#include "core/serialize.h"
#include "eval/workload.h"
#include "model/induction.h"

namespace pc {
namespace {

class SerializeTest : public ::testing::TestWithParam<StorePrecision> {
 protected:
  SerializeTest()
      : workload_(7),
        model_(make_induction_model({workload_.vocab().size(), 256})) {}

  EngineConfig config() const {
    EngineConfig cfg;
    cfg.precision = GetParam();
    return cfg;
  }

  GenerateOptions answer_options() const {
    GenerateOptions o;
    o.max_new_tokens = 6;
    o.stop_tokens = {workload_.stop_token()};
    return o;
  }

  std::string temp_path() const {
    return ::testing::TempDir() + "pc_modules_" +
           std::to_string(static_cast<int>(GetParam())) + ".bin";
  }

  static constexpr const char* kSchema = R"(
    <schema name="s">
      <module name="doc1">w00 w01 q05 a10 a11 . w02</module>
      <module name="doc2">w03 q06 a12 a13 . w04</module>
      <module name="plan">w05 <param name="x" len="3"/> w06</module>
    </schema>)";
  static constexpr const char* kPrompt =
      R"(<prompt schema="s"><doc1/><doc2/> question: q06</prompt>)";

  AccuracyWorkload workload_;
  Model model_;
};

TEST_P(SerializeTest, SaveThenLoadServesWithoutReencoding) {
  const std::string path = temp_path();
  {
    PromptCacheEngine writer(model_, workload_.tokenizer(), config());
    writer.load_schema(kSchema);
    EXPECT_EQ(writer.save_modules(path), 3u);
  }

  EngineConfig cfg = config();
  cfg.eager_encode = false;
  PromptCacheEngine reader(model_, workload_.tokenizer(), cfg);
  reader.load_schema(kSchema);  // schema metadata only, no encoding
  EXPECT_EQ(reader.stats().modules_encoded, 0u);
  EXPECT_EQ(reader.load_modules(path), 3u);

  const ServeResult r = reader.serve(kPrompt, answer_options());
  EXPECT_EQ(r.text, "a12 a13");
  EXPECT_EQ(reader.stats().modules_encoded, 0u)
      << "serving must use the restored states, not re-encode";
  std::remove(path.c_str());
}

TEST_P(SerializeTest, RestoredStatesAreBitwiseEquivalent) {
  PromptCacheEngine writer(model_, workload_.tokenizer(), config());
  writer.load_schema(kSchema);

  std::stringstream stream;
  write_store_header(stream);
  size_t written = 0;
  writer.store().for_each([&](const std::string& key,
                              const EncodedModule& module, ModuleLocation) {
    write_module_record(stream, key, module);
    ++written;
  });
  ASSERT_EQ(written, 3u);

  read_store_header(stream);
  std::string key;
  EncodedModule m;
  size_t read_count = 0;
  while (read_module_record(stream, &key, &m)) {
    ++read_count;
    ModuleLocation loc;
    const EncodedModule* orig = writer.store().find(key, &loc);
    ASSERT_NE(orig, nullptr) << key;
    EXPECT_EQ(m.precision, orig->precision);
    EXPECT_EQ(m.n_tokens, orig->n_tokens);
    EXPECT_EQ(m.text_row_ranges, orig->text_row_ranges);
    EXPECT_EQ(m.payload_bytes(), orig->payload_bytes());
    if (m.precision == StorePrecision::kFp32) {
      for (int l = 0; l < m.n_layers; ++l) {
        for (int t = 0; t < m.n_tokens; ++t) {
          for (int e = 0; e < m.kv_dim; ++e) {
            ASSERT_EQ(m.kv32->k_row(l, t)[e], orig->kv32->k_row(l, t)[e]);
            ASSERT_EQ(m.kv32->v_row(l, t)[e], orig->kv32->v_row(l, t)[e]);
          }
        }
      }
    } else if (m.precision == StorePrecision::kQ8) {
      // Quantized records restore the exact int8 payload and per-row
      // scales — the int8-domain attention path then reproduces the
      // pre-save scores bit for bit.
      ASSERT_EQ(m.kv8_layers.size(), orig->kv8_layers.size());
      for (size_t l = 0; l < m.kv8_layers.size(); ++l) {
        EXPECT_EQ(m.kv8_layers[l].k, orig->kv8_layers[l].k) << "layer " << l;
        EXPECT_EQ(m.kv8_layers[l].v, orig->kv8_layers[l].v) << "layer " << l;
        EXPECT_EQ(m.kv8_layers[l].k_scales, orig->kv8_layers[l].k_scales);
        EXPECT_EQ(m.kv8_layers[l].v_scales, orig->kv8_layers[l].v_scales);
      }
    } else if (m.precision == StorePrecision::kQ4) {
      // Q4_0 records restore the exact packed nibbles and per-block scales.
      ASSERT_EQ(m.kv4_layers.size(), orig->kv4_layers.size());
      for (size_t l = 0; l < m.kv4_layers.size(); ++l) {
        EXPECT_EQ(m.kv4_layers[l].k, orig->kv4_layers[l].k) << "layer " << l;
        EXPECT_EQ(m.kv4_layers[l].v, orig->kv4_layers[l].v) << "layer " << l;
        EXPECT_EQ(m.kv4_layers[l].k_scales, orig->kv4_layers[l].k_scales);
        EXPECT_EQ(m.kv4_layers[l].v_scales, orig->kv4_layers[l].v_scales);
      }
    }
  }
  EXPECT_EQ(read_count, 3u);
}

TEST_P(SerializeTest, CorruptionIsDetected) {
  PromptCacheEngine writer(model_, workload_.tokenizer(), config());
  writer.load_schema(kSchema);
  const std::string path = temp_path();
  writer.save_modules(path);

  // Flip one payload byte near the end of the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekp(size - 32);
    char c;
    f.seekg(size - 32);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(size - 32);
    f.write(&c, 1);
  }
  PromptCacheEngine reader(model_, workload_.tokenizer(), config());
  EXPECT_THROW(reader.load_modules(path), Error);
  std::remove(path.c_str());
}

TEST_P(SerializeTest, TruncationAndBadHeaderAreDetected) {
  PromptCacheEngine writer(model_, workload_.tokenizer(), config());
  writer.load_schema(kSchema);
  const std::string path = temp_path();
  writer.save_modules(path);

  // Truncate the file in the middle of a record.
  std::string contents;
  {
    std::ifstream f(path, std::ios::binary);
    std::stringstream ss;
    ss << f.rdbuf();
    contents = ss.str();
  }
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(contents.data(), static_cast<long>(contents.size() / 2));
  }
  PromptCacheEngine reader(model_, workload_.tokenizer(), config());
  EXPECT_THROW(reader.load_modules(path), Error);

  // Garbage header.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "not a module store";
  }
  EXPECT_THROW(reader.load_modules(path), Error);
  EXPECT_THROW(reader.load_modules(path + ".does-not-exist"), Error);
  std::remove(path.c_str());
}

// Fuzz the snapshot: random single-byte corruptions anywhere in the file
// must fail loudly (pc::Error) or — only when the flip lands outside every
// checked field AND the checksum (practically impossible since the checksum
// covers all payload bytes) — load cleanly. Never crash.
TEST_P(SerializeTest, RandomCorruptionFailsLoudly) {
  PromptCacheEngine writer(model_, workload_.tokenizer(), config());
  writer.load_schema(kSchema);
  const std::string path = temp_path();
  writer.save_modules(path);

  std::string contents;
  {
    std::ifstream f(path, std::ios::binary);
    std::stringstream ss;
    ss << f.rdbuf();
    contents = ss.str();
  }

  Rng rng(static_cast<uint64_t>(GetParam()) + 99);
  int rejected = 0;
  for (int trial = 0; trial < 25; ++trial) {
    std::string mutated = contents;
    const size_t at = rng.next_below(mutated.size());
    mutated[at] = static_cast<char>(mutated[at] ^
                                    (1u << rng.next_below(8)));
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(mutated.data(), static_cast<long>(mutated.size()));
    }
    PromptCacheEngine reader(model_, workload_.tokenizer(), config());
    try {
      (void)reader.load_modules(path);
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 24);  // at most a bit flip in trailing slack survives
  std::remove(path.c_str());
}

// Recovery policy (LoadPolicy::kSkipCorrupt): a flipped bit in one record
// must cost exactly that record — the loader resyncs on the next record
// tag, loads the rest, and the skipped module is re-encoded lazily.
TEST_P(SerializeTest, RecoveryPolicySkipsBitFlippedRecord) {
  PromptCacheEngine writer(model_, workload_.tokenizer(), config());
  writer.load_schema(kSchema);
  const std::string path = temp_path();
  ASSERT_EQ(writer.save_modules(path), 3u);

  // Corrupt the first record's checksum: locate the second record tag
  // ("PDCM" on the wire) and flip a byte just before it.
  std::string contents;
  {
    std::ifstream f(path, std::ios::binary);
    std::stringstream ss;
    ss << f.rdbuf();
    contents = ss.str();
  }
  const size_t first = contents.find("PDCM");
  ASSERT_NE(first, std::string::npos);
  const size_t second = contents.find("PDCM", first + 4);
  ASSERT_NE(second, std::string::npos);
  contents[second - 4] = static_cast<char>(contents[second - 4] ^ 0x5a);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(contents.data(), static_cast<long>(contents.size()));
  }

  EngineConfig cfg = config();
  cfg.eager_encode = false;
  {
    PromptCacheEngine strict(model_, workload_.tokenizer(), cfg);
    strict.load_schema(kSchema);
    EXPECT_THROW(strict.load_modules(path), Error);
  }

  PromptCacheEngine reader(model_, workload_.tokenizer(), cfg);
  reader.load_schema(kSchema);
  const PromptCacheEngine::LoadReport report =
      reader.load_modules(path, PromptCacheEngine::LoadPolicy::kSkipCorrupt);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.loaded, 2u);

  // The missing module is a cache miss, not an outage: serving re-encodes
  // it and the answer matches a fully fresh engine.
  PromptCacheEngine reference(model_, workload_.tokenizer(), config());
  reference.load_schema(kSchema);
  EXPECT_EQ(reader.serve(kPrompt, answer_options()).tokens,
            reference.serve(kPrompt, answer_options()).tokens);
  std::remove(path.c_str());
}

TEST_P(SerializeTest, RecoveryPolicySalvagesTruncatedFile) {
  PromptCacheEngine writer(model_, workload_.tokenizer(), config());
  writer.load_schema(kSchema);
  const std::string path = temp_path();
  ASSERT_EQ(writer.save_modules(path), 3u);

  std::string contents;
  {
    std::ifstream f(path, std::ios::binary);
    std::stringstream ss;
    ss << f.rdbuf();
    contents = ss.str();
  }
  // Cut mid-file: the record under the cut is lost, everything before it
  // must still load.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(contents.data(), static_cast<long>(contents.size() / 2));
  }

  EngineConfig cfg = config();
  cfg.eager_encode = false;
  PromptCacheEngine reader(model_, workload_.tokenizer(), cfg);
  reader.load_schema(kSchema);
  const PromptCacheEngine::LoadReport report =
      reader.load_modules(path, PromptCacheEngine::LoadPolicy::kSkipCorrupt);
  EXPECT_GE(report.loaded, 1u);
  EXPECT_LE(report.loaded, 2u);
  EXPECT_GE(report.skipped, 1u);

  PromptCacheEngine reference(model_, workload_.tokenizer(), config());
  reference.load_schema(kSchema);
  EXPECT_EQ(reader.serve(kPrompt, answer_options()).tokens,
            reference.serve(kPrompt, answer_options()).tokens);
  std::remove(path.c_str());
}

// A snapshot written by an fp32 deployment must load into a quantized
// (PC_KV_FORMAT=q8) engine: records are converted to Q8_0 at load time, the
// store holds only int8 payloads, and serving works without re-encoding.
TEST(SerializeUpgrade, LegacyFp32SnapshotLoadsIntoQ8Engine) {
  AccuracyWorkload workload(7);
  Model model = make_induction_model({workload.vocab().size(), 256});
  constexpr const char* kSchema = R"(
    <schema name="s">
      <module name="doc1">w00 w01 q05 a10 a11 . w02</module>
      <module name="doc2">w03 q06 a12 a13 . w04</module>
    </schema>)";
  constexpr const char* kPrompt =
      R"(<prompt schema="s"><doc1/><doc2/> question: q06</prompt>)";
  GenerateOptions opts;
  opts.max_new_tokens = 6;
  opts.stop_tokens = {workload.stop_token()};

  const std::string path = ::testing::TempDir() + "pc_modules_legacy.bin";
  {
    EngineConfig fp32_cfg;
    fp32_cfg.precision = StorePrecision::kFp32;
    PromptCacheEngine writer(model, workload.tokenizer(), fp32_cfg);
    writer.load_schema(kSchema);
    ASSERT_EQ(writer.save_modules(path), 2u);
  }

  EngineConfig q8_cfg;
  q8_cfg.precision = StorePrecision::kQ8;
  q8_cfg.eager_encode = false;
  PromptCacheEngine reader(model, workload.tokenizer(), q8_cfg);
  reader.load_schema(kSchema);
  EXPECT_EQ(reader.load_modules(path), 2u);
  EXPECT_EQ(reader.stats().modules_encoded, 0u);

  // Every restored module was upgraded to the engine's resident format.
  size_t seen = 0;
  reader.store().for_each([&](const std::string&, const EncodedModule& m,
                              ModuleLocation) {
    ++seen;
    EXPECT_EQ(m.precision, StorePrecision::kQ8);
    EXPECT_FALSE(m.kv32.has_value()) << "no fp32 payload may stay resident";
    EXPECT_FALSE(m.kv8_layers.empty());
  });
  EXPECT_EQ(seen, 2u);
  EXPECT_GT(reader.store().resident_bytes_q8(), 0u);
  EXPECT_EQ(reader.store().resident_bytes_fp32(), 0u);

  const ServeResult r = reader.serve(kPrompt, opts);
  EXPECT_EQ(r.text, "a12 a13");
  EXPECT_EQ(reader.stats().modules_encoded, 0u)
      << "conversion must not trigger re-encoding";
  std::remove(path.c_str());
}

// The same upgrade path for the sub-byte format: an fp32 snapshot loads
// into a PC_KV_FORMAT=q4 engine, records are converted to Q4_0 at load
// time, and serving works without re-encoding.
TEST(SerializeUpgrade, LegacyFp32SnapshotLoadsIntoQ4Engine) {
  AccuracyWorkload workload(7);
  Model model = make_induction_model({workload.vocab().size(), 256});
  constexpr const char* kSchema = R"(
    <schema name="s">
      <module name="doc1">w00 w01 q05 a10 a11 . w02</module>
      <module name="doc2">w03 q06 a12 a13 . w04</module>
    </schema>)";
  constexpr const char* kPrompt =
      R"(<prompt schema="s"><doc1/><doc2/> question: q06</prompt>)";
  GenerateOptions opts;
  opts.max_new_tokens = 6;
  opts.stop_tokens = {workload.stop_token()};

  const std::string path = ::testing::TempDir() + "pc_modules_legacy_q4.bin";
  {
    EngineConfig fp32_cfg;
    fp32_cfg.precision = StorePrecision::kFp32;
    PromptCacheEngine writer(model, workload.tokenizer(), fp32_cfg);
    writer.load_schema(kSchema);
    ASSERT_EQ(writer.save_modules(path), 2u);
  }

  EngineConfig q4_cfg;
  q4_cfg.precision = StorePrecision::kQ4;
  q4_cfg.eager_encode = false;
  PromptCacheEngine reader(model, workload.tokenizer(), q4_cfg);
  reader.load_schema(kSchema);
  EXPECT_EQ(reader.load_modules(path), 2u);
  EXPECT_EQ(reader.stats().modules_encoded, 0u);

  size_t seen = 0;
  reader.store().for_each([&](const std::string&, const EncodedModule& m,
                              ModuleLocation) {
    ++seen;
    EXPECT_EQ(m.precision, StorePrecision::kQ4);
    EXPECT_FALSE(m.kv32.has_value()) << "no fp32 payload may stay resident";
    EXPECT_FALSE(m.kv4_layers.empty());
  });
  EXPECT_EQ(seen, 2u);
  EXPECT_GT(reader.store().resident_bytes_q4(), 0u);
  EXPECT_EQ(reader.store().resident_bytes_q8(), 0u);
  EXPECT_EQ(reader.store().resident_bytes_fp32(), 0u);

  const ServeResult r = reader.serve(kPrompt, opts);
  EXPECT_EQ(r.text, "a12 a13");
  EXPECT_EQ(reader.stats().modules_encoded, 0u)
      << "conversion must not trigger re-encoding";
  std::remove(path.c_str());
}

TEST_P(SerializeTest, GeometryMismatchRejected) {
  PromptCacheEngine writer(model_, workload_.tokenizer(), config());
  writer.load_schema(kSchema);
  const std::string path = temp_path();
  writer.save_modules(path);

  // A model with different geometry must refuse the file.
  Model other = make_induction_model({workload_.vocab().size(), 128});
  PromptCacheEngine reader(other, workload_.tokenizer(), config());
  EXPECT_THROW(reader.load_modules(path), Error);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, SerializeTest,
                         ::testing::Values(StorePrecision::kFp32,
                                           StorePrecision::kFp16,
                                           StorePrecision::kQ8,
                                           StorePrecision::kQ4),
                         [](const auto& info) {
                           switch (info.param) {
                             case StorePrecision::kFp32: return "Fp32";
                             case StorePrecision::kFp16: return "Fp16";
                             case StorePrecision::kQ8: return "Q8";
                             case StorePrecision::kQ4: return "Q4";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace pc
