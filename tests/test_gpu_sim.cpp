// Tests for the GPU pipeline simulator: conservation, dominance, and
// pipelining properties.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sys/gpu_sim.h"

namespace pc {
namespace {

const ModelSpec& spec() { return find_spec("Llama 7B"); }

TEST(GpuSim, SerialModeMatchesSumOfParts) {
  const auto& hw = HardwareProfile::rtx4090();
  const GpuSimResult r = simulate_cached_ttft(hw, spec(), 4000, 50,
                                              ModuleLocation::kHostMemory,
                                              /*overlap=*/false);
  EXPECT_NEAR(r.ttft_s,
              hw.kernel_launch_s + r.copy_busy_s + r.compute_busy_s +
                  (r.ttft_s - hw.kernel_launch_s - r.copy_busy_s -
                   r.compute_busy_s),  // logits tail
              1e-12);
  // Copy time matches the analytic transfer estimate (minus per-layer
  // latency bookkeeping).
  const double analytic =
      estimate_memcpy_s(hw, spec().kv_bytes_per_token() * 4000,
                        ModuleLocation::kHostMemory);
  EXPECT_NEAR(r.copy_busy_s, analytic,
              analytic * 0.05 + spec().n_layers * hw.host_link_latency_s);
}

TEST(GpuSim, OverlapNeverSlower) {
  const auto& hw = HardwareProfile::rtx4090();
  for (int64_t cached : {1000, 3000, 5000}) {
    for (int64_t uncached : {1, 50, 400}) {
      const double serial =
          simulate_cached_ttft(hw, spec(), cached, uncached,
                               ModuleLocation::kHostMemory, false)
              .ttft_s;
      const double pipelined =
          simulate_cached_ttft(hw, spec(), cached, uncached,
                               ModuleLocation::kHostMemory, true)
              .ttft_s;
      EXPECT_LE(pipelined, serial + 1e-12)
          << cached << "/" << uncached;
    }
  }
}

TEST(GpuSim, PipelinedTtftBoundedByDominantResource) {
  // With overlap, TTFT is at least the busier engine's total work, and at
  // most serial execution; when copy dominates, TTFT approaches copy time.
  const auto& hw = HardwareProfile::a40();
  const GpuSimResult r = simulate_cached_ttft(hw, spec(), 5000, 10,
                                              ModuleLocation::kHostMemory,
                                              true);
  EXPECT_GE(r.ttft_s, std::max(r.copy_busy_s, r.compute_busy_s));
  // Copy-dominated: one layer's compute cannot be hidden (the last layer
  // runs after its copy), but the rest overlaps.
  EXPECT_LE(r.ttft_s, r.copy_busy_s + r.compute_busy_s + 1e-3);
  EXPECT_GT(r.compute_stall_s, 0.0);
}

TEST(GpuSim, DeviceMemoryCopiesAreNearFree) {
  const auto& hw = HardwareProfile::rtx4090();
  const GpuSimResult host = simulate_cached_ttft(
      hw, spec(), 5000, 50, ModuleLocation::kHostMemory, true);
  const GpuSimResult device = simulate_cached_ttft(
      hw, spec(), 5000, 50, ModuleLocation::kDeviceMemory, true);
  EXPECT_LT(device.ttft_s, host.ttft_s);
  EXPECT_LT(device.copy_busy_s, host.copy_busy_s / 20.0);
}

TEST(GpuSim, LayerFinishTimesAreMonotonic) {
  const auto& hw = HardwareProfile::a100();
  const GpuSimResult r = simulate_cached_ttft(hw, spec(), 2000, 100,
                                              ModuleLocation::kHostMemory,
                                              true);
  ASSERT_EQ(static_cast<int>(r.layer_finish_s.size()), spec().n_layers);
  for (size_t l = 1; l < r.layer_finish_s.size(); ++l) {
    EXPECT_GT(r.layer_finish_s[l], r.layer_finish_s[l - 1]);
  }
  EXPECT_LE(r.layer_finish_s.back(), r.ttft_s);
}

TEST(GpuSim, PipeliningRecoversMostOfTheHostMemoryPenalty) {
  // The practical claim: with copy/compute overlap, serving modules from
  // host memory costs much less extra than the serial model suggests.
  const auto& hw = HardwareProfile::rtx4090();
  const double device = simulate_cached_ttft(
      hw, spec(), 5000, 50, ModuleLocation::kDeviceMemory, true).ttft_s;
  const double host_serial = simulate_cached_ttft(
      hw, spec(), 5000, 50, ModuleLocation::kHostMemory, false).ttft_s;
  const double host_pipelined = simulate_cached_ttft(
      hw, spec(), 5000, 50, ModuleLocation::kHostMemory, true).ttft_s;
  const double serial_penalty = host_serial - device;
  const double pipelined_penalty = host_pipelined - device;
  EXPECT_LT(pipelined_penalty, serial_penalty * 0.8);
}

TEST(GpuSim, ContractsEnforced) {
  EXPECT_THROW(simulate_cached_ttft(HardwareProfile::intel_i9_13900k(),
                                    spec(), 100, 10,
                                    ModuleLocation::kHostMemory, true),
               ContractViolation);
  EXPECT_THROW(simulate_cached_ttft(HardwareProfile::rtx4090(), spec(), 100,
                                    0, ModuleLocation::kHostMemory, true),
               ContractViolation);
}

}  // namespace
}  // namespace pc
