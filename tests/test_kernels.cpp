// Golden-equivalence property tests for the vectorized/blocked/fused tensor
// kernels: every kernel is checked against a naive scalar reference across
// odd sizes, unaligned spans, and edge cases. Where the kernel contract
// promises bitwise behaviour (elementwise ops, softmax, masked-vs-compacted
// attention, m-independence of matmul rows) the tests assert exact equality,
// not a tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "kv/quant.h"
#include "model/model.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace pc {
namespace {

// Sizes chosen to hit every vector-width remainder path: 0, 1, sub-lane,
// lane-exact, lane+1, multi-lane odd, and "big".
const std::vector<size_t> kLengths = {0,  1,  2,  3,   5,   7,   8,  9,
                                      15, 16, 17, 31,  32,  33,  63, 64,
                                      65, 95, 100, 127, 128, 257, 1000};

std::vector<float> random_vec(size_t n, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-scale, scale);
  return v;
}

// ---- scalar references (the seed implementations) ---------------------------

float ref_dot(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void ref_gemm_nt(const float* a, const float* b, float* c, size_t m, size_t k,
                 size_t n) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      c[i * n + j] = ref_dot(a + i * k, b + j * k, k);
    }
  }
}

void ref_gemm(const float* a, const float* b, float* c, size_t m, size_t k,
              size_t n) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (size_t l = 0; l < k; ++l) s += a[i * k + l] * b[l * n + j];
      c[i * n + j] = s;
    }
  }
}

// Naive fused-attention reference with the exact semantics of ops.h:
// -inf for masked, scalar two-pass softmax, in-order mix skipping zeros.
void ref_attention(const float* q, const float* k, const float* v,
                   size_t stride, size_t d_head, size_t n_ctx, float scale,
                   float slope, const float* rel, const uint8_t* masked,
                   float* out) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  std::vector<float> scores(n_ctx);
  for (size_t j = 0; j < n_ctx; ++j) {
    if (masked && masked[j]) {
      scores[j] = kNegInf;
      continue;
    }
    float s = ref_dot(q, k + j * stride, d_head) * scale;
    if (rel) s += -slope * rel[j];
    scores[j] = s;
  }
  std::fill(out, out + d_head, 0.0f);
  if (n_ctx == 0) return;
  float mx = scores[0];
  for (size_t j = 1; j < n_ctx; ++j) mx = std::max(mx, scores[j]);
  if (mx == kNegInf) return;  // all masked: zero mix by contract
  float sum = 0.0f;
  for (size_t j = 0; j < n_ctx; ++j) {
    scores[j] = std::exp(scores[j] - mx);
    sum += scores[j];
  }
  for (size_t j = 0; j < n_ctx; ++j) scores[j] /= sum;
  for (size_t j = 0; j < n_ctx; ++j) {
    if (scores[j] == 0.0f) continue;
    for (size_t e = 0; e < d_head; ++e) out[e] += scores[j] * v[j * stride + e];
  }
}

float max_abs_diff_span(const float* a, const float* b, size_t n) {
  float mx = 0.0f;
  for (size_t i = 0; i < n; ++i) mx = std::max(mx, std::abs(a[i] - b[i]));
  return mx;
}

// ---- simd primitives vs scalar reference ------------------------------------

TEST(SimdKernels, DotMatchesScalarAcrossSizesAndAlignments) {
  for (size_t n : kLengths) {
    // +1 so the offset view below stays in range.
    const auto a = random_vec(n + 1, 11 + n, 0.5f);
    const auto b = random_vec(n + 1, 13 + n, 0.5f);
    EXPECT_LE(std::abs(simd::dot(a.data(), b.data(), n) -
                       ref_dot(a.data(), b.data(), n)),
              1e-5f)
        << "n=" << n;
    // Unaligned: vector data offset by one float from the allocation.
    EXPECT_LE(std::abs(simd::dot(a.data() + 1, b.data() + 1, n) -
                       ref_dot(a.data() + 1, b.data() + 1, n)),
              1e-5f)
        << "n=" << n << " unaligned";
  }
}

TEST(SimdKernels, ElementwiseOpsAreBitExact) {
  for (size_t n : kLengths) {
    const auto x = random_vec(n + 1, 17 + n);
    auto y_simd = random_vec(n + 1, 19 + n);
    auto y_ref = y_simd;

    simd::axpy(0.37f, x.data() + 1, y_simd.data() + 1, n);
    for (size_t i = 0; i < n; ++i) y_ref[i + 1] += 0.37f * x[i + 1];
    for (size_t i = 0; i < n + 1; ++i) ASSERT_EQ(y_simd[i], y_ref[i]) << i;

    auto a_simd = random_vec(n, 23 + n);
    auto a_ref = a_simd;
    simd::add(a_simd.data(), x.data(), n);
    for (size_t i = 0; i < n; ++i) a_ref[i] += x[i];
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(a_simd[i], a_ref[i]);

    simd::mul(a_simd.data(), x.data(), n);
    for (size_t i = 0; i < n; ++i) a_ref[i] *= x[i];
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(a_simd[i], a_ref[i]);

    simd::scale(a_simd.data(), -1.7f, n);
    for (size_t i = 0; i < n; ++i) a_ref[i] *= -1.7f;
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(a_simd[i], a_ref[i]);

    simd::scale_store(2.5f, x.data(), a_simd.data(), n);
    for (size_t i = 0; i < n; ++i) a_ref[i] = 2.5f * x[i];
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(a_simd[i], a_ref[i]);
  }
}

TEST(SimdKernels, ReduceMaxIsExact) {
  for (size_t n : kLengths) {
    if (n == 0) continue;
    auto v = random_vec(n, 29 + n, 10.0f);
    float mx = v[0];
    for (size_t i = 1; i < n; ++i) mx = std::max(mx, v[i]);
    EXPECT_EQ(simd::reduce_max(v.data(), n), mx) << "n=" << n;
    // -inf entries (masked attention scores) must not perturb the max.
    if (n >= 3) {
      v[n / 2] = -std::numeric_limits<float>::infinity();
      float mx2 = v[0];
      for (size_t i = 1; i < n; ++i) mx2 = std::max(mx2, v[i]);
      EXPECT_EQ(simd::reduce_max(v.data(), n), mx2) << "n=" << n;
    }
  }
}

TEST(SimdKernels, Dot4AndDot2x4MatchDotPerColumn) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{33},
                   size_t{100}, size_t{257}}) {
    const auto a0 = random_vec(n, 101 + n, 0.5f);
    const auto a1 = random_vec(n, 103 + n, 0.5f);
    std::vector<std::vector<float>> b;
    for (int c = 0; c < 4; ++c) b.push_back(random_vec(n, 200 + n + c, 0.5f));

    float o4[4], o0[4], o1[4];
    simd::dot4(a0.data(), b[0].data(), b[1].data(), b[2].data(), b[3].data(),
               n, o4);
    simd::dot2x4(a0.data(), a1.data(), b[0].data(), b[1].data(), b[2].data(),
                 b[3].data(), n, o0, o1);
    for (int c = 0; c < 4; ++c) {
      // The m-independence contract: the 1x4 and 2x4 tiles accumulate each
      // (row, column) in the same order, hence identical bits.
      ASSERT_EQ(o4[c], o0[c]) << "n=" << n << " col=" << c;
      EXPECT_LE(std::abs(o4[c] - ref_dot(a0.data(), b[c].data(), n)), 1e-5f);
      EXPECT_LE(std::abs(o1[c] - ref_dot(a1.data(), b[c].data(), n)), 1e-5f);
    }
  }
}

// ---- gemm / gemm_nt ---------------------------------------------------------

TEST(GemmKernels, GemmNtMatchesScalarReference) {
  // (m, k, n) triples covering tile edges: odd everything, single row,
  // single column, k below one vector, and a blocked-panel-sized case.
  const std::vector<std::array<size_t, 3>> shapes = {
      {1, 1, 1},  {1, 8, 4},   {2, 16, 8},  {3, 17, 5},   {4, 64, 12},
      {5, 100, 7}, {7, 33, 9},  {1, 512, 3}, {8, 128, 130}, {9, 65, 67},
      {16, 256, 96}};
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    const float scale = 1.0f / std::sqrt(static_cast<float>(k));
    const auto a = random_vec(m * k, 7 * k + n, scale);
    const auto b = random_vec(n * k, 9 * k + m, scale);
    std::vector<float> c(m * n), c_ref(m * n);
    gemm_nt(a.data(), b.data(), c.data(), m, k, n);
    ref_gemm_nt(a.data(), b.data(), c_ref.data(), m, k, n);
    EXPECT_LE(max_abs_diff_span(c.data(), c_ref.data(), m * n), 1e-5f)
        << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(GemmKernels, GemmMatchesScalarReference) {
  const std::vector<std::array<size_t, 3>> shapes = {
      {1, 1, 1},  {1, 8, 4},  {3, 17, 5},  {5, 100, 7},
      {7, 33, 9}, {8, 130, 64}, {16, 200, 96}};
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    const float scale = 1.0f / std::sqrt(static_cast<float>(k));
    const auto a = random_vec(m * k, 3 * k + n, scale);
    const auto b = random_vec(k * n, 5 * k + m, scale);
    std::vector<float> c(m * n), c_ref(m * n);
    gemm(a.data(), b.data(), c.data(), m, k, n);
    ref_gemm(a.data(), b.data(), c_ref.data(), m, k, n);
    EXPECT_LE(max_abs_diff_span(c.data(), c_ref.data(), m * n), 1e-5f)
        << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(GemmKernels, RowResultIndependentOfBatchSize) {
  // The incremental-equals-full bitwise property of the engine requires
  // that row i of a matmul depend only on (a_row_i, B) — never on how many
  // other rows were computed alongside it.
  const size_t m = 5, k = 129, n = 37;
  const auto a = random_vec(m * k, 71);
  const auto b = random_vec(n * k, 73);
  std::vector<float> full(m * n);
  gemm_nt(a.data(), b.data(), full.data(), m, k, n);
  for (size_t i = 0; i < m; ++i) {
    std::vector<float> single(n);
    gemm_nt(a.data() + i * k, b.data(), single.data(), 1, k, n);
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(full[i * n + j], single[j]) << "row " << i << " col " << j;
    }
  }
}

// ---- softmax ---------------------------------------------------------------

TEST(SoftmaxKernel, BitIdenticalToScalarReference) {
  for (size_t n : kLengths) {
    if (n == 0) continue;
    auto row = random_vec(n, 31 + n, 4.0f);
    auto ref = row;
    softmax_inplace(row.data(), n);
    // Scalar reference with the identical operation sequence.
    float mx = ref[0];
    for (size_t i = 1; i < n; ++i) mx = std::max(mx, ref[i]);
    float sum = 0.0f;
    for (size_t i = 0; i < n; ++i) {
      ref[i] = std::exp(ref[i] - mx);
      sum += ref[i];
    }
    const float inv = 1.0f / sum;
    for (size_t i = 0; i < n; ++i) ref[i] *= inv;
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(row[i], ref[i]) << "n=" << n;
  }
}

// ---- fused attention -------------------------------------------------------

struct AttnCase {
  size_t d_head;
  size_t n_ctx;
  size_t kv_dim;  // row stride; > d_head exercises the head offset
};

class FusedAttentionTest : public ::testing::TestWithParam<AttnCase> {};

TEST_P(FusedAttentionTest, MatchesNaiveReference) {
  const auto [d_head, n_ctx, kv_dim] = GetParam();
  const size_t head_off = kv_dim - d_head;  // attend to the last head
  const auto q = random_vec(d_head, 41 + n_ctx, 0.5f);
  const auto k = random_vec(n_ctx * kv_dim + 1, 43 + n_ctx, 0.5f);
  const auto v = random_vec(n_ctx * kv_dim + 1, 47 + n_ctx, 0.5f);
  Rng rng(53 + n_ctx);
  std::vector<uint8_t> masked(n_ctx);
  for (auto& mv : masked) mv = rng.next_below(4) == 0 ? 1 : 0;
  if (n_ctx > 0) masked[n_ctx - 1] = 0;  // keep at least one live slot
  std::vector<float> rel(n_ctx);
  for (size_t j = 0; j < n_ctx; ++j) {
    rel[j] = static_cast<float>(static_cast<int>(n_ctx - j));
  }

  for (const bool use_mask : {false, true}) {
    for (const bool use_alibi : {false, true}) {
      std::vector<float> scores(n_ctx), out(d_head), out_ref(d_head);
      attn_fused_contig(q.data(), k.data() + head_off, v.data() + head_off,
                        kv_dim, d_head, n_ctx, 0.25f, 0.0625f,
                        use_alibi ? rel.data() : nullptr,
                        use_mask ? masked.data() : nullptr, scores.data(),
                        out.data());
      ref_attention(q.data(), k.data() + head_off, v.data() + head_off,
                    kv_dim, d_head, n_ctx, 0.25f, 0.0625f,
                    use_alibi ? rel.data() : nullptr,
                    use_mask ? masked.data() : nullptr, out_ref.data());
      EXPECT_LE(max_abs_diff_span(out.data(), out_ref.data(), d_head), 1e-5f)
          << "d_head=" << d_head << " n_ctx=" << n_ctx
          << " mask=" << use_mask << " alibi=" << use_alibi;
    }
  }
}

TEST_P(FusedAttentionTest, GatherVariantBitIdenticalToContiguous) {
  const auto [d_head, n_ctx, kv_dim] = GetParam();
  const auto q = random_vec(d_head, 61 + n_ctx, 0.5f);
  const auto k = random_vec(n_ctx * kv_dim + 1, 67 + n_ctx, 0.5f);
  const auto v = random_vec(n_ctx * kv_dim + 1, 71 + n_ctx, 0.5f);
  std::vector<const float*> k_rows(n_ctx), v_rows(n_ctx);
  for (size_t j = 0; j < n_ctx; ++j) {
    k_rows[j] = k.data() + j * kv_dim;
    v_rows[j] = v.data() + j * kv_dim;
  }
  std::vector<float> s1(n_ctx), s2(n_ctx), o1(d_head), o2(d_head);
  attn_fused_contig(q.data(), k.data(), v.data(), kv_dim, d_head, n_ctx,
                    0.125f, 0.0f, nullptr, nullptr, s1.data(), o1.data());
  attn_fused_gather(q.data(), k_rows.data(), v_rows.data(), 0, d_head, n_ctx,
                    0.125f, 0.0f, nullptr, nullptr, s2.data(), o2.data());
  for (size_t e = 0; e < d_head; ++e) ASSERT_EQ(o1[e], o2[e]);
  for (size_t j = 0; j < n_ctx; ++j) ASSERT_EQ(s1[j], s2[j]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedAttentionTest,
    ::testing::Values(AttnCase{1, 1, 1}, AttnCase{3, 5, 3},
                      AttnCase{8, 17, 16}, AttnCase{16, 33, 48},
                      AttnCase{32, 100, 64}, AttnCase{64, 257, 128},
                      AttnCase{128, 64, 128}));

TEST(FusedAttention, MaskedSlotsBitIdenticalToCompactedContext) {
  // The core INTERNALS §2 property at the kernel level: running over the
  // full context with masked holes equals running over only the unmasked
  // slots, bit for bit.
  const size_t d_head = 32, n_ctx = 57, kv_dim = 64;
  const auto q = random_vec(d_head, 81, 0.5f);
  const auto k = random_vec(n_ctx * kv_dim, 83, 0.5f);
  const auto v = random_vec(n_ctx * kv_dim, 87, 0.5f);
  Rng rng(89);
  std::vector<uint8_t> masked(n_ctx);
  for (auto& mv : masked) mv = rng.next_below(3) == 0 ? 1 : 0;
  masked[0] = 0;

  std::vector<float> scores(n_ctx), out(d_head);
  attn_fused_contig(q.data(), k.data(), v.data(), kv_dim, d_head, n_ctx,
                    0.2f, 0.0f, nullptr, masked.data(), scores.data(),
                    out.data());

  // Compact the unmasked rows into a dense context.
  std::vector<float> kc, vc;
  std::vector<const float*> k_rows, v_rows;
  for (size_t j = 0; j < n_ctx; ++j) {
    if (masked[j]) continue;
    k_rows.push_back(k.data() + j * kv_dim);
    v_rows.push_back(v.data() + j * kv_dim);
  }
  std::vector<float> scores_c(k_rows.size()), out_c(d_head);
  attn_fused_gather(q.data(), k_rows.data(), v_rows.data(), 0, d_head,
                    k_rows.size(), 0.2f, 0.0f, nullptr, nullptr,
                    scores_c.data(), out_c.data());
  for (size_t e = 0; e < d_head; ++e) {
    ASSERT_EQ(out[e], out_c[e]) << "elem " << e;
  }
}

TEST(FusedAttention, AllMaskedRowYieldsZeros) {
  const size_t d_head = 16, n_ctx = 23;
  const auto q = random_vec(d_head, 91);
  const auto k = random_vec(n_ctx * d_head, 93);
  const auto v = random_vec(n_ctx * d_head, 97);
  const std::vector<uint8_t> masked(n_ctx, 1);
  std::vector<float> scores(n_ctx, 42.0f), out(d_head, 42.0f);
  attn_fused_contig(q.data(), k.data(), v.data(), d_head, d_head, n_ctx,
                    1.0f, 0.0f, nullptr, masked.data(), scores.data(),
                    out.data());
  for (float x : out) EXPECT_EQ(x, 0.0f);
  for (float x : scores) EXPECT_EQ(x, 0.0f);
}

TEST(FusedAttention, EmptyContextYieldsZeros) {
  const size_t d_head = 8;
  const auto q = random_vec(d_head, 99);
  std::vector<float> out(d_head, 42.0f);
  attn_fused_contig(q.data(), nullptr, nullptr, 0, d_head, 0, 1.0f, 0.0f,
                    nullptr, nullptr, nullptr, out.data());
  for (float x : out) EXPECT_EQ(x, 0.0f);
}

// ---- Q8_0 quantization + int8 primitives ------------------------------------

int32_t ref_dot_i8(const int8_t* a, const int8_t* b, size_t n) {
  int32_t s = 0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
}

std::vector<int8_t> random_i8(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int8_t> v(n);
  // Q8_0 precondition: values in [-127, 127], never -128.
  for (auto& x : v) x = static_cast<int8_t>(rng.next_below(255)) - 127;
  return v;
}

TEST(Q8Kernels, QuantizeRowsBitIdenticalToScalarGolden) {
  for (size_t width : kLengths) {
    if (width == 0) continue;
    const int n_rows = 4;
    auto src = random_vec(n_rows * width, 300 + width, 3.0f);
    // Row 1: all zeros (scale must fall back to 1.0). Row 2: one huge
    // outlier so every other element quantizes to 0. Row 3: the negative
    // extreme must land on -127, never saturate to -128.
    std::fill(src.begin() + width, src.begin() + 2 * width, 0.0f);
    src[2 * width] = 1000.0f;
    src[3 * width] = -8.0f;
    std::vector<int8_t> q_vec(n_rows * width), q_ref(n_rows * width);
    std::vector<float> s_vec(n_rows), s_ref(n_rows);
    quantize_rows(src.data(), n_rows, static_cast<int>(width), q_vec.data(),
                  s_vec.data());
    quantize_rows_scalar(src.data(), n_rows, static_cast<int>(width),
                         q_ref.data(), s_ref.data());
    for (int r = 0; r < n_rows; ++r) {
      ASSERT_EQ(s_vec[r], s_ref[r]) << "width=" << width << " row=" << r;
    }
    for (size_t i = 0; i < q_vec.size(); ++i) {
      ASSERT_EQ(q_vec[i], q_ref[i]) << "width=" << width << " elem=" << i;
      ASSERT_GE(q_vec[i], -127) << "Q8_0 must never produce -128";
    }
    EXPECT_EQ(s_vec[1], 1.0f) << "all-zero row scale fallback";
  }
}

TEST(Q8Kernels, QuantizeRoundTripErrorBoundedByHalfStep) {
  const size_t width = 100;
  const int n_rows = 8;
  const auto src = random_vec(n_rows * width, 411, 2.0f);
  std::vector<int8_t> q(n_rows * width);
  std::vector<float> scales(n_rows);
  quantize_rows(src.data(), n_rows, static_cast<int>(width), q.data(),
                scales.data());
  std::vector<float> back(width);
  for (int r = 0; r < n_rows; ++r) {
    dequantize_row(q.data() + r * width, scales[r], static_cast<int>(width),
                   back.data());
    for (size_t i = 0; i < width; ++i) {
      EXPECT_LE(std::abs(back[i] - src[r * width + i]),
                0.5f * scales[r] + 1e-6f)
          << "row=" << r << " elem=" << i;
    }
  }
}

TEST(Q8Kernels, DotI8MatchesScalarAcrossSizes) {
  for (size_t n : kLengths) {
    const auto a = random_i8(n, 500 + n);
    const auto b = random_i8(n, 600 + n);
    EXPECT_EQ(simd::dot_i8(a.data(), b.data(), n),
              ref_dot_i8(a.data(), b.data(), n))
        << "n=" << n;
  }
  // Extreme magnitudes: +-127 everywhere is the worst case for the AVX2
  // maddubs pair-sum (2*127*127 must not saturate int16).
  for (size_t n : {size_t{32}, size_t{1000}}) {
    std::vector<int8_t> hi(n, 127), lo(n, -127);
    EXPECT_EQ(simd::dot_i8(hi.data(), hi.data(), n),
              static_cast<int32_t>(n) * 127 * 127);
    EXPECT_EQ(simd::dot_i8(hi.data(), lo.data(), n),
              -static_cast<int32_t>(n) * 127 * 127);
    EXPECT_EQ(simd::dot_i8(lo.data(), lo.data(), n),
              static_cast<int32_t>(n) * 127 * 127);
  }
}

TEST(Q8Kernels, DequantAndAxpyI8MatchScalar) {
  for (size_t n : kLengths) {
    const auto x = random_i8(n, 700 + n);
    std::vector<float> y_simd(n), y_ref(n);
    simd::dequant_store(x.data(), 0.031f, y_simd.data(), n);
    for (size_t i = 0; i < n; ++i) {
      y_ref[i] = 0.031f * static_cast<float>(x[i]);
    }
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(y_simd[i], y_ref[i]) << i;

    auto acc_simd = random_vec(n, 800 + n);
    auto acc_ref = acc_simd;
    simd::axpy_i8(0.57f, x.data(), acc_simd.data(), n);
    for (size_t i = 0; i < n; ++i) {
      acc_ref[i] += 0.57f * static_cast<float>(x[i]);
    }
    // fma8 may contract the multiply-add; allow half-ulp-of-product slack.
    for (size_t i = 0; i < n; ++i) {
      ASSERT_LE(std::abs(acc_simd[i] - acc_ref[i]), 1e-4f) << i;
    }
  }
}

// ---- q8 fused attention ------------------------------------------------------

// Exact mirror of attn_fused_q8_gather with the integer dot taken scalar
// (integer accumulation is order-independent, so this is still a bitwise
// reference) and every float step using the same simd primitives in the
// same order.
void ref_q8_attention(const float* q, const int8_t* const* k8_rows,
                      const int8_t* const* v8_rows, const float* k_scales,
                      const float* v_scales, const float* const* k_rows,
                      const float* const* v_rows, size_t head_off,
                      size_t d_head, size_t n_ctx, float scale, float slope,
                      const float* rel, const uint8_t* masked, float* scores,
                      float* out) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  if (n_ctx == 0) {
    std::fill(out, out + d_head, 0.0f);
    return;
  }
  std::vector<int8_t> q8(d_head);
  const float q_max = simd::reduce_max_abs(q, d_head);
  const float q_scale = q_max > 0.0f ? q_max / 127.0f : 1.0f;
  simd::quantize_i8(q, 1.0f / q_scale, q8.data(), d_head);
  const float fix = scale * q_scale;
  for (size_t j = 0; j < n_ctx; ++j) {
    if (masked != nullptr && masked[j] != 0) {
      scores[j] = kNegInf;
      continue;
    }
    float s;
    if (k8_rows[j] != nullptr) {
      const int32_t d = ref_dot_i8(q8.data(), k8_rows[j] + head_off, d_head);
      s = static_cast<float>(d) * (fix * k_scales[j]);
    } else {
      s = simd::dot(q, k_rows[j] + head_off, d_head) * scale;
    }
    if (rel != nullptr) s += -slope * rel[j];
    scores[j] = s;
  }
  const float mx = simd::reduce_max(scores, n_ctx);
  if (mx == kNegInf) {
    std::fill(scores, scores + n_ctx, 0.0f);
    std::fill(out, out + d_head, 0.0f);
    return;
  }
  float sum = 0.0f;
  for (size_t j = 0; j < n_ctx; ++j) {
    scores[j] = std::exp(scores[j] - mx);
    sum += scores[j];
  }
  simd::scale(scores, 1.0f / sum, n_ctx);
  std::fill(out, out + d_head, 0.0f);
  for (size_t j = 0; j < n_ctx; ++j) {
    const float w = scores[j];
    if (w == 0.0f) continue;
    if (v8_rows[j] != nullptr) {
      simd::axpy_i8(w * v_scales[j], v8_rows[j] + head_off, out, d_head);
    } else {
      simd::axpy(w, v_rows[j] + head_off, out, d_head);
    }
  }
}

TEST_P(FusedAttentionTest, Q8GatherAllFp32SlotsBitIdenticalToGather) {
  // With every slot fp32 the q8 kernel must follow the exact operation
  // sequence of attn_fused_gather — the fp32 regression guard that lets the
  // mixed kernel serve as the only segmented attention path.
  const auto [d_head, n_ctx, kv_dim] = GetParam();
  const size_t head_off = kv_dim - d_head;
  const auto q = random_vec(d_head, 911 + n_ctx, 0.5f);
  const auto k = random_vec(n_ctx * kv_dim + 1, 913 + n_ctx, 0.5f);
  const auto v = random_vec(n_ctx * kv_dim + 1, 917 + n_ctx, 0.5f);
  std::vector<const float*> k_rows(n_ctx), v_rows(n_ctx);
  for (size_t j = 0; j < n_ctx; ++j) {
    k_rows[j] = k.data() + j * kv_dim;
    v_rows[j] = v.data() + j * kv_dim;
  }
  const std::vector<const int8_t*> null8(n_ctx, nullptr);
  const std::vector<float> no_scales(n_ctx, 0.0f);
  std::vector<float> s1(n_ctx), s2(n_ctx), o1(d_head), o2(d_head);
  attn_fused_gather(q.data(), k_rows.data(), v_rows.data(), head_off, d_head,
                    n_ctx, 0.125f, 0.0f, nullptr, nullptr, s1.data(),
                    o1.data());
  attn_fused_q8_gather(q.data(), null8.data(), null8.data(),
                       no_scales.data(), no_scales.data(), k_rows.data(),
                       v_rows.data(), head_off, d_head, n_ctx, 0.125f, 0.0f,
                       nullptr, nullptr, s2.data(), o2.data());
  for (size_t j = 0; j < n_ctx; ++j) ASSERT_EQ(s1[j], s2[j]) << "slot " << j;
  for (size_t e = 0; e < d_head; ++e) ASSERT_EQ(o1[e], o2[e]) << "elem " << e;
}

TEST_P(FusedAttentionTest, Q8GatherMixedFormatMatchesMirrorReference) {
  // Alternate q8 and fp32 slots (the paged layout: shared module pages
  // quantized, private decode tail fp32) under mask and ALiBi variants.
  const auto [d_head, n_ctx, kv_dim] = GetParam();
  const size_t head_off = kv_dim - d_head;
  const auto q = random_vec(d_head, 921 + n_ctx, 0.5f);
  const auto k = random_vec(n_ctx * kv_dim + 1, 923 + n_ctx, 0.5f);
  const auto v = random_vec(n_ctx * kv_dim + 1, 927 + n_ctx, 0.5f);
  std::vector<int8_t> k8(n_ctx * kv_dim), v8(n_ctx * kv_dim);
  std::vector<float> ks(n_ctx), vs(n_ctx);
  if (n_ctx > 0) {
    quantize_rows(k.data(), static_cast<int>(n_ctx), static_cast<int>(kv_dim),
                  k8.data(), ks.data());
    quantize_rows(v.data(), static_cast<int>(n_ctx), static_cast<int>(kv_dim),
                  v8.data(), vs.data());
  }
  std::vector<const float*> k_rows(n_ctx, nullptr), v_rows(n_ctx, nullptr);
  std::vector<const int8_t*> k8_rows(n_ctx, nullptr), v8_rows(n_ctx, nullptr);
  for (size_t j = 0; j < n_ctx; ++j) {
    if (j % 2 == 0) {
      k8_rows[j] = k8.data() + j * kv_dim;
      v8_rows[j] = v8.data() + j * kv_dim;
    } else {
      k_rows[j] = k.data() + j * kv_dim;
      v_rows[j] = v.data() + j * kv_dim;
    }
  }
  Rng rng(929 + n_ctx);
  std::vector<uint8_t> masked(n_ctx);
  for (auto& mv : masked) mv = rng.next_below(4) == 0 ? 1 : 0;
  if (n_ctx > 0) masked[n_ctx - 1] = 0;
  std::vector<float> rel(n_ctx);
  for (size_t j = 0; j < n_ctx; ++j) {
    rel[j] = static_cast<float>(static_cast<int>(n_ctx - j));
  }
  for (const bool use_mask : {false, true}) {
    for (const bool use_alibi : {false, true}) {
      std::vector<float> s1(n_ctx), s2(n_ctx), o1(d_head), o2(d_head);
      attn_fused_q8_gather(q.data(), k8_rows.data(), v8_rows.data(),
                           ks.data(), vs.data(), k_rows.data(), v_rows.data(),
                           head_off, d_head, n_ctx, 0.25f, 0.0625f,
                           use_alibi ? rel.data() : nullptr,
                           use_mask ? masked.data() : nullptr, s1.data(),
                           o1.data());
      ref_q8_attention(q.data(), k8_rows.data(), v8_rows.data(), ks.data(),
                       vs.data(), k_rows.data(), v_rows.data(), head_off,
                       d_head, n_ctx, 0.25f, 0.0625f,
                       use_alibi ? rel.data() : nullptr,
                       use_mask ? masked.data() : nullptr, s2.data(),
                       o2.data());
      for (size_t j = 0; j < n_ctx; ++j) {
        ASSERT_EQ(s1[j], s2[j])
            << "slot " << j << " mask=" << use_mask << " alibi=" << use_alibi;
      }
      for (size_t e = 0; e < d_head; ++e) {
        ASSERT_EQ(o1[e], o2[e])
            << "elem " << e << " mask=" << use_mask << " alibi=" << use_alibi;
      }
    }
  }
}

TEST_P(FusedAttentionTest, Q8GatherCloseToFp32Attention) {
  // All slots quantized: the int8-domain result must track the fp32 result
  // on the original rows within the Q8_0 error budget.
  const auto [d_head, n_ctx, kv_dim] = GetParam();
  if (n_ctx == 0) return;
  const size_t head_off = kv_dim - d_head;
  const auto q = random_vec(d_head, 941 + n_ctx, 0.5f);
  const auto k = random_vec(n_ctx * kv_dim + 1, 943 + n_ctx, 0.5f);
  const auto v = random_vec(n_ctx * kv_dim + 1, 947 + n_ctx, 0.5f);
  std::vector<int8_t> k8(n_ctx * kv_dim), v8(n_ctx * kv_dim);
  std::vector<float> ks(n_ctx), vs(n_ctx);
  quantize_rows(k.data(), static_cast<int>(n_ctx), static_cast<int>(kv_dim),
                k8.data(), ks.data());
  quantize_rows(v.data(), static_cast<int>(n_ctx), static_cast<int>(kv_dim),
                v8.data(), vs.data());
  std::vector<const float*> k_rows(n_ctx), v_rows(n_ctx);
  std::vector<const int8_t*> k8_rows(n_ctx), v8_rows(n_ctx);
  for (size_t j = 0; j < n_ctx; ++j) {
    k_rows[j] = k.data() + j * kv_dim;
    v_rows[j] = v.data() + j * kv_dim;
    k8_rows[j] = k8.data() + j * kv_dim;
    v8_rows[j] = v8.data() + j * kv_dim;
  }
  const std::vector<const float*> null32(n_ctx, nullptr);
  std::vector<float> s_q8(n_ctx), s_fp(n_ctx), o_q8(d_head), o_fp(d_head);
  attn_fused_q8_gather(q.data(), k8_rows.data(), v8_rows.data(), ks.data(),
                       vs.data(), null32.data(), null32.data(), head_off,
                       d_head, n_ctx, 0.25f, 0.0f, nullptr, nullptr,
                       s_q8.data(), o_q8.data());
  attn_fused_gather(q.data(), k_rows.data(), v_rows.data(), head_off, d_head,
                    n_ctx, 0.25f, 0.0f, nullptr, nullptr, s_fp.data(),
                    o_fp.data());
  EXPECT_LE(max_abs_diff_span(o_q8.data(), o_fp.data(), d_head), 0.05f)
      << "d_head=" << d_head << " n_ctx=" << n_ctx;
}

TEST(FusedAttention, Q8AllMaskedYieldsZeros) {
  const size_t d_head = 16, n_ctx = 23;
  const auto q = random_vec(d_head, 951);
  const auto k = random_vec(n_ctx * d_head, 953);
  std::vector<int8_t> k8(n_ctx * d_head), v8(n_ctx * d_head);
  std::vector<float> ks(n_ctx), vs(n_ctx);
  quantize_rows(k.data(), static_cast<int>(n_ctx), static_cast<int>(d_head),
                k8.data(), ks.data());
  quantize_rows(k.data(), static_cast<int>(n_ctx), static_cast<int>(d_head),
                v8.data(), vs.data());
  std::vector<const int8_t*> k8_rows(n_ctx), v8_rows(n_ctx);
  for (size_t j = 0; j < n_ctx; ++j) {
    k8_rows[j] = k8.data() + j * d_head;
    v8_rows[j] = v8.data() + j * d_head;
  }
  const std::vector<const float*> null32(n_ctx, nullptr);
  const std::vector<uint8_t> masked(n_ctx, 1);
  std::vector<float> scores(n_ctx, 42.0f), out(d_head, 42.0f);
  attn_fused_q8_gather(q.data(), k8_rows.data(), v8_rows.data(), ks.data(),
                       vs.data(), null32.data(), null32.data(), 0, d_head,
                       n_ctx, 1.0f, 0.0f, nullptr, masked.data(),
                       scores.data(), out.data());
  for (float x : out) EXPECT_EQ(x, 0.0f);
  for (float x : scores) EXPECT_EQ(x, 0.0f);
}

TEST(FusedAttention, Q8EmptyContextYieldsZeros) {
  const size_t d_head = 8;
  const auto q = random_vec(d_head, 961);
  std::vector<float> out(d_head, 42.0f);
  attn_fused_q8_gather(q.data(), nullptr, nullptr, nullptr, nullptr, nullptr,
                       nullptr, 0, d_head, 0, 1.0f, 0.0f, nullptr, nullptr,
                       nullptr, out.data());
  for (float x : out) EXPECT_EQ(x, 0.0f);
}

// ---- Q4_0 quantization + int4 primitives ------------------------------------

// Scalar mirror of simd::dot_i4i8 (the integer part is exact and the float
// block accumulation is strictly sequential on every ISA path, so this is a
// bitwise reference).
float ref_dot_i4i8(const int8_t* q8, const uint8_t* packed,
                   const float* block_scales, const int32_t* q_sums,
                   size_t n_blocks) {
  float s = 0.0f;
  for (size_t b = 0; b < n_blocks; ++b) {
    int32_t p = 0;
    for (size_t j = 0; j < 16; ++j) {
      const uint8_t byte = packed[b * 16 + j];
      p += static_cast<int32_t>(q8[b * 32 + j]) * (byte & 0x0f);
      p += static_cast<int32_t>(q8[b * 32 + 16 + j]) * (byte >> 4);
    }
    s += block_scales[b] * static_cast<float>(p - 8 * q_sums[b]);
  }
  return s;
}

TEST(Q4Kernels, QuantizeRowsQ4BitIdenticalToScalarGolden) {
  for (size_t width : kLengths) {
    if (width == 0) continue;
    const int n_rows = 4;
    const int blocks = q4_blocks(static_cast<int>(width));
    const size_t row_bytes = q4_row_bytes(static_cast<int>(width));
    auto src = random_vec(n_rows * width, 1300 + width, 3.0f);
    // Row 1: all zeros (every block scale must fall back to 1.0). Row 2:
    // one huge outlier so the rest of its block quantizes to 0. Row 3: the
    // negative extreme must land exactly on quant level -8 (nibble 0).
    std::fill(src.begin() + width, src.begin() + 2 * width, 0.0f);
    src[2 * width] = 1000.0f;
    src[3 * width] = -8.0f;
    std::vector<uint8_t> p_vec(n_rows * row_bytes), p_ref(n_rows * row_bytes);
    std::vector<float> s_vec(n_rows * blocks), s_ref(n_rows * blocks);
    quantize_rows_q4(src.data(), n_rows, static_cast<int>(width),
                     p_vec.data(), s_vec.data());
    quantize_rows_q4_scalar(src.data(), n_rows, static_cast<int>(width),
                            p_ref.data(), s_ref.data());
    for (size_t i = 0; i < s_vec.size(); ++i) {
      ASSERT_EQ(s_vec[i], s_ref[i]) << "width=" << width << " block=" << i;
    }
    for (size_t i = 0; i < p_vec.size(); ++i) {
      ASSERT_EQ(p_vec[i], p_ref[i]) << "width=" << width << " byte=" << i;
    }
    for (int b = 0; b < blocks; ++b) {
      EXPECT_EQ(s_vec[blocks + b], 1.0f) << "all-zero block scale fallback";
    }
    EXPECT_EQ(p_ref[3 * row_bytes] & 0x0f, 0)
        << "negative extremum must quantize to level -8 (nibble 0)";
  }
}

TEST(Q4Kernels, QuantizeRoundTripErrorBoundedByOneStep) {
  const size_t width = 100;  // 4 blocks, the last one partial
  const int n_rows = 8;
  const int blocks = q4_blocks(static_cast<int>(width));
  const size_t row_bytes = q4_row_bytes(static_cast<int>(width));
  const auto src = random_vec(n_rows * width, 1411, 2.0f);
  std::vector<uint8_t> packed(n_rows * row_bytes);
  std::vector<float> scales(n_rows * blocks);
  quantize_rows_q4(src.data(), n_rows, static_cast<int>(width), packed.data(),
                   scales.data());
  std::vector<float> back(width);
  for (int r = 0; r < n_rows; ++r) {
    dequantize_row_q4(packed.data() + r * row_bytes,
                      scales.data() + r * blocks, static_cast<int>(width),
                      back.data());
    for (size_t i = 0; i < width; ++i) {
      // The Q4_0 level grid is asymmetric (scale * [-8, 7] with scale =
      // extremum / -8): values opposite the block extremum can clamp at
      // level 7 and land up to one full step away, so the bound is a step,
      // not the half-step of symmetric q8.
      const float step = std::abs(scales[r * blocks + i / kQ4BlockSize]);
      EXPECT_LE(std::abs(back[i] - src[r * width + i]), step + 1e-6f)
          << "row=" << r << " elem=" << i;
    }
  }
}

TEST(Q4Kernels, DotI4I8BitIdenticalToScalarReference) {
  Rng rng(1500);
  for (const size_t n_blocks : {size_t{1}, size_t{2}, size_t{4}, size_t{9}}) {
    const size_t n = n_blocks * 32;
    std::vector<uint8_t> packed(n_blocks * 16);
    for (auto& b : packed) b = static_cast<uint8_t>(rng.next_below(256));
    std::vector<int8_t> q8(n);
    for (auto& x : q8) x = static_cast<int8_t>(rng.next_below(255)) - 127;
    std::vector<float> scales(n_blocks);
    for (auto& s : scales) s = rng.uniform(-0.1f, 0.1f);
    std::vector<int32_t> q_sums(n_blocks);
    for (size_t b = 0; b < n_blocks; ++b) {
      int32_t s = 0;
      for (size_t i = 0; i < 32; ++i) s += q8[b * 32 + i];
      q_sums[b] = s;
    }
    EXPECT_EQ(simd::dot_i4i8(q8.data(), packed.data(), scales.data(),
                             q_sums.data(), n_blocks),
              ref_dot_i4i8(q8.data(), packed.data(), scales.data(),
                           q_sums.data(), n_blocks))
        << "n_blocks=" << n_blocks;
  }
  // Worst-case magnitudes for the maddubs pair sums: nibble 15 against
  // query +-127 everywhere (2*15*127 = 3810 must not saturate int16).
  const size_t n_blocks = 4;
  std::vector<uint8_t> all_hi(n_blocks * 16, 0xff);
  std::vector<int8_t> q_hi(n_blocks * 32, 127), q_lo(n_blocks * 32, -127);
  const std::vector<float> unit(n_blocks, 1.0f);
  std::vector<int32_t> sums_hi(n_blocks, 32 * 127), sums_lo(n_blocks,
                                                            -32 * 127);
  EXPECT_EQ(simd::dot_i4i8(q_hi.data(), all_hi.data(), unit.data(),
                           sums_hi.data(), n_blocks),
            ref_dot_i4i8(q_hi.data(), all_hi.data(), unit.data(),
                         sums_hi.data(), n_blocks));
  EXPECT_EQ(simd::dot_i4i8(q_lo.data(), all_hi.data(), unit.data(),
                           sums_lo.data(), n_blocks),
            ref_dot_i4i8(q_lo.data(), all_hi.data(), unit.data(),
                         sums_lo.data(), n_blocks));
}

TEST(Q4Kernels, DequantStoreI4MatchesScalar) {
  Rng rng(1600);
  for (const size_t n : {size_t{1}, size_t{7}, size_t{16}, size_t{17},
                         size_t{31}, size_t{32}}) {
    std::vector<uint8_t> packed(16);
    for (auto& b : packed) b = static_cast<uint8_t>(rng.next_below(256));
    const float scale = 0.043f;
    std::vector<float> y_simd(n), y_ref(n);
    simd::dequant_store_i4(packed.data(), scale, y_simd.data(), n);
    for (size_t i = 0; i < n; ++i) {
      const uint8_t byte = packed[i & 15];
      const int nib = i < 16 ? (byte & 0x0f) : (byte >> 4);
      y_ref[i] = scale * static_cast<float>(nib - 8);
    }
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(y_simd[i], y_ref[i]) << i;
  }
}

TEST(Q4Kernels, NomadLutScoringBitIdenticalToIntegerDot) {
  // The multiply-add-free path: per-dimension 16-entry LUTs applied by byte
  // shuffle must reproduce the integer block score sum_j q4[j]*(nib_j - 8)
  // exactly — entries fit int8 ([-56, 64]) and a block accumulates at most
  // 2048 into int16, so there is no saturation anywhere.
  Rng rng(1700);
  const size_t n_blocks = 2;  // 64-dim head
  const size_t n_keys = 16;
  std::vector<uint8_t> packed(n_keys * n_blocks * 16);
  for (auto& b : packed) b = static_cast<uint8_t>(rng.next_below(256));
  std::vector<const uint8_t*> rows(n_keys);
  for (size_t r = 0; r < n_keys; ++r) {
    rows[r] = packed.data() + r * n_blocks * 16;
  }
  std::vector<int32_t> q4(n_blocks * 32);
  for (auto& x : q4) x = static_cast<int32_t>(rng.next_below(16)) - 8;

  // LUT path: code-major tile, per-block shuffle tables, int16 accumulate.
  std::vector<uint8_t> tile(n_blocks * 16 * 16);
  simd::nomad_transpose_tile16(rows.data(), n_keys, n_blocks, tile.data());
  std::array<int16_t, 16> out16{};
  for (size_t b = 0; b < n_blocks; ++b) {
    int8_t luts[32 * 16];
    simd::nomad_build_block_luts(q4.data() + b * 32, luts);
    simd::nomad_score_block16(tile.data() + b * 16 * 16, luts, out16.data());
  }

  for (size_t r = 0; r < n_keys; ++r) {
    int32_t want = 0;
    for (size_t b = 0; b < n_blocks; ++b) {
      for (size_t j = 0; j < 16; ++j) {
        const uint8_t byte = rows[r][b * 16 + j];
        want += q4[b * 32 + j] * ((byte & 0x0f) - 8);
        want += q4[b * 32 + 16 + j] * ((byte >> 4) - 8);
      }
    }
    EXPECT_EQ(out16[r], want) << "key " << r;
  }

  // Short tiles pad with 0x88 (quantized zero): scores of absent keys are
  // exactly -sum(q4)*0 per dim... i.e. 0 contribution per padded dim.
  std::array<int16_t, 16> pad16{};
  std::vector<uint8_t> tile_short(n_blocks * 16 * 16);
  simd::nomad_transpose_tile16(rows.data(), 3, n_blocks, tile_short.data());
  for (size_t b = 0; b < n_blocks; ++b) {
    int8_t luts[32 * 16];
    simd::nomad_build_block_luts(q4.data() + b * 32, luts);
    simd::nomad_score_block16(tile_short.data() + b * 16 * 16, luts,
                              pad16.data());
  }
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(pad16[r], out16[r]);
  for (size_t r = 3; r < 16; ++r) EXPECT_EQ(pad16[r], 0) << "padded key " << r;
}

// ---- q4 fused attention ------------------------------------------------------

// Exact mirror of attn_fused_q4_gather with the integer block dot taken
// scalar; every float step uses the same simd primitives in the same order,
// so the comparison is bitwise.
void ref_q4_attention(const float* q, const uint8_t* const* k4_rows,
                      const uint8_t* const* v4_rows,
                      const float* const* k4_scales,
                      const float* const* v4_scales,
                      const float* const* k_rows, const float* const* v_rows,
                      size_t head_off, size_t d_head, size_t n_ctx,
                      float scale, float slope, const float* rel,
                      const uint8_t* masked, float* scores, float* out) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  if (n_ctx == 0) {
    std::fill(out, out + d_head, 0.0f);
    return;
  }
  const size_t n_blocks = (d_head + 31) / 32;
  const size_t blk_off = head_off / 32;
  const size_t byte_off = blk_off * 16;
  std::vector<int8_t> q8(n_blocks * 32, 0);
  const float q_max = simd::reduce_max_abs(q, d_head);
  const float q_scale = q_max > 0.0f ? q_max / 127.0f : 1.0f;
  simd::quantize_i8(q, 1.0f / q_scale, q8.data(), d_head);
  std::vector<int32_t> q_sums(n_blocks);
  for (size_t b = 0; b < n_blocks; ++b) {
    int32_t s = 0;
    for (size_t i = 0; i < 32; ++i) s += q8[b * 32 + i];
    q_sums[b] = s;
  }
  const float fix = scale * q_scale;
  for (size_t j = 0; j < n_ctx; ++j) {
    if (masked != nullptr && masked[j] != 0) {
      scores[j] = kNegInf;
      continue;
    }
    float s;
    if (k4_rows[j] != nullptr) {
      s = ref_dot_i4i8(q8.data(), k4_rows[j] + byte_off,
                       k4_scales[j] + blk_off, q_sums.data(), n_blocks) *
          fix;
    } else {
      s = simd::dot(q, k_rows[j] + head_off, d_head) * scale;
    }
    if (rel != nullptr) s += -slope * rel[j];
    scores[j] = s;
  }
  const float mx = simd::reduce_max(scores, n_ctx);
  if (mx == kNegInf) {
    std::fill(scores, scores + n_ctx, 0.0f);
    std::fill(out, out + d_head, 0.0f);
    return;
  }
  float sum = 0.0f;
  for (size_t j = 0; j < n_ctx; ++j) {
    scores[j] = std::exp(scores[j] - mx);
    sum += scores[j];
  }
  simd::scale(scores, 1.0f / sum, n_ctx);
  std::fill(out, out + d_head, 0.0f);
  for (size_t j = 0; j < n_ctx; ++j) {
    const float w = scores[j];
    if (w == 0.0f) continue;
    if (v4_rows[j] != nullptr) {
      simd::axpy_i4(w, v4_rows[j] + byte_off, v4_scales[j] + blk_off, out,
                    d_head);
    } else {
      simd::axpy(w, v_rows[j] + head_off, out, d_head);
    }
  }
}

// Helper bundle: n_ctx rows of width kv_dim quantized to Q4_0, with the
// per-row pointer tables the gather kernel consumes.
struct Q4Rows {
  std::vector<uint8_t> packed;
  std::vector<float> scales;
  std::vector<const uint8_t*> rows;
  std::vector<const float*> row_scales;

  Q4Rows(const float* src, size_t n_ctx, size_t kv_dim) {
    const int blocks = q4_blocks(static_cast<int>(kv_dim));
    const size_t row_bytes = q4_row_bytes(static_cast<int>(kv_dim));
    packed.resize(n_ctx * row_bytes);
    scales.resize(n_ctx * blocks);
    if (n_ctx > 0) {
      quantize_rows_q4(src, static_cast<int>(n_ctx),
                       static_cast<int>(kv_dim), packed.data(),
                       scales.data());
    }
    rows.resize(n_ctx);
    row_scales.resize(n_ctx);
    for (size_t j = 0; j < n_ctx; ++j) {
      rows[j] = packed.data() + j * row_bytes;
      row_scales[j] = scales.data() + j * blocks;
    }
  }
};

// The q4 kernel requires a 32-aligned head offset (whole Q4_0 blocks), so
// its shape set fixes head_off = kv_dim - d_head to multiples of 32 —
// including d_head values that end mid-block (16, 33).
class Q4FusedAttentionTest : public ::testing::TestWithParam<AttnCase> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, Q4FusedAttentionTest,
    ::testing::Values(AttnCase{32, 1, 32}, AttnCase{16, 23, 16},
                      AttnCase{33, 29, 33}, AttnCase{32, 100, 64},
                      AttnCase{64, 257, 128}, AttnCase{128, 64, 128}));

TEST_P(Q4FusedAttentionTest, AllFp32SlotsBitIdenticalToGather) {
  // With every slot fp32 the q4 kernel must follow the exact operation
  // sequence of attn_fused_gather — the regression guard that makes the q4
  // path safe as a view's only attention kernel.
  const auto [d_head, n_ctx, kv_dim] = GetParam();
  const size_t head_off = kv_dim - d_head;
  const auto q = random_vec(d_head, 1811 + n_ctx, 0.5f);
  const auto k = random_vec(n_ctx * kv_dim + 1, 1813 + n_ctx, 0.5f);
  const auto v = random_vec(n_ctx * kv_dim + 1, 1817 + n_ctx, 0.5f);
  std::vector<const float*> k_rows(n_ctx), v_rows(n_ctx);
  for (size_t j = 0; j < n_ctx; ++j) {
    k_rows[j] = k.data() + j * kv_dim;
    v_rows[j] = v.data() + j * kv_dim;
  }
  const std::vector<const uint8_t*> null4(n_ctx, nullptr);
  const std::vector<const float*> null_sc(n_ctx, nullptr);
  std::vector<float> s1(n_ctx), s2(n_ctx), o1(d_head), o2(d_head);
  attn_fused_gather(q.data(), k_rows.data(), v_rows.data(), head_off, d_head,
                    n_ctx, 0.125f, 0.0f, nullptr, nullptr, s1.data(),
                    o1.data());
  attn_fused_q4_gather(q.data(), null4.data(), null4.data(), null_sc.data(),
                       null_sc.data(), k_rows.data(), v_rows.data(), head_off,
                       d_head, n_ctx, 0.125f, 0.0f, nullptr, nullptr,
                       s2.data(), o2.data());
  for (size_t j = 0; j < n_ctx; ++j) ASSERT_EQ(s1[j], s2[j]) << "slot " << j;
  for (size_t e = 0; e < d_head; ++e) ASSERT_EQ(o1[e], o2[e]) << "elem " << e;
}

TEST_P(Q4FusedAttentionTest, MixedFormatMatchesMirrorReference) {
  // Alternate q4 and fp32 slots (the paged layout: shared module pages
  // quantized, private decode tail fp32) under mask and ALiBi variants.
  const auto [d_head, n_ctx, kv_dim] = GetParam();
  const size_t head_off = kv_dim - d_head;
  const auto q = random_vec(d_head, 1821 + n_ctx, 0.5f);
  const auto k = random_vec(n_ctx * kv_dim + 1, 1823 + n_ctx, 0.5f);
  const auto v = random_vec(n_ctx * kv_dim + 1, 1827 + n_ctx, 0.5f);
  const Q4Rows k4(k.data(), n_ctx, kv_dim);
  const Q4Rows v4(v.data(), n_ctx, kv_dim);
  std::vector<const float*> k_rows(n_ctx, nullptr), v_rows(n_ctx, nullptr);
  std::vector<const uint8_t*> k4_rows(n_ctx, nullptr), v4_rows(n_ctx, nullptr);
  std::vector<const float*> k4_sc(n_ctx, nullptr), v4_sc(n_ctx, nullptr);
  for (size_t j = 0; j < n_ctx; ++j) {
    if (j % 2 == 0) {
      k4_rows[j] = k4.rows[j];
      v4_rows[j] = v4.rows[j];
      k4_sc[j] = k4.row_scales[j];
      v4_sc[j] = v4.row_scales[j];
    } else {
      k_rows[j] = k.data() + j * kv_dim;
      v_rows[j] = v.data() + j * kv_dim;
    }
  }
  Rng rng(1829 + n_ctx);
  std::vector<uint8_t> masked(n_ctx);
  for (auto& mv : masked) mv = rng.next_below(4) == 0 ? 1 : 0;
  if (n_ctx > 0) masked[n_ctx - 1] = 0;
  std::vector<float> rel(n_ctx);
  for (size_t j = 0; j < n_ctx; ++j) {
    rel[j] = static_cast<float>(static_cast<int>(n_ctx - j));
  }
  for (const bool use_mask : {false, true}) {
    for (const bool use_alibi : {false, true}) {
      std::vector<float> s1(n_ctx), s2(n_ctx), o1(d_head), o2(d_head);
      attn_fused_q4_gather(q.data(), k4_rows.data(), v4_rows.data(),
                           k4_sc.data(), v4_sc.data(), k_rows.data(),
                           v_rows.data(), head_off, d_head, n_ctx, 0.25f,
                           0.0625f, use_alibi ? rel.data() : nullptr,
                           use_mask ? masked.data() : nullptr, s1.data(),
                           o1.data());
      ref_q4_attention(q.data(), k4_rows.data(), v4_rows.data(), k4_sc.data(),
                       v4_sc.data(), k_rows.data(), v_rows.data(), head_off,
                       d_head, n_ctx, 0.25f, 0.0625f,
                       use_alibi ? rel.data() : nullptr,
                       use_mask ? masked.data() : nullptr, s2.data(),
                       o2.data());
      for (size_t j = 0; j < n_ctx; ++j) {
        ASSERT_EQ(s1[j], s2[j])
            << "slot " << j << " mask=" << use_mask << " alibi=" << use_alibi;
      }
      for (size_t e = 0; e < d_head; ++e) {
        ASSERT_EQ(o1[e], o2[e])
            << "elem " << e << " mask=" << use_mask << " alibi=" << use_alibi;
      }
    }
  }
}

TEST_P(Q4FusedAttentionTest, CloseToFp32Attention) {
  // All slots quantized: the int4-domain result must track the fp32 result
  // on the original rows within the Q4_0 error budget (coarser than q8 —
  // 4-bit levels, but the per-block scales keep the error bounded).
  const auto [d_head, n_ctx, kv_dim] = GetParam();
  if (n_ctx == 0) return;
  const size_t head_off = kv_dim - d_head;
  const auto q = random_vec(d_head, 1841 + n_ctx, 0.5f);
  const auto k = random_vec(n_ctx * kv_dim + 1, 1843 + n_ctx, 0.5f);
  const auto v = random_vec(n_ctx * kv_dim + 1, 1847 + n_ctx, 0.5f);
  const Q4Rows k4(k.data(), n_ctx, kv_dim);
  const Q4Rows v4(v.data(), n_ctx, kv_dim);
  std::vector<const float*> k_rows(n_ctx), v_rows(n_ctx);
  for (size_t j = 0; j < n_ctx; ++j) {
    k_rows[j] = k.data() + j * kv_dim;
    v_rows[j] = v.data() + j * kv_dim;
  }
  const std::vector<const float*> null32(n_ctx, nullptr);
  std::vector<float> s_q4(n_ctx), s_fp(n_ctx), o_q4(d_head), o_fp(d_head);
  attn_fused_q4_gather(q.data(), k4.rows.data(), v4.rows.data(),
                       k4.row_scales.data(), v4.row_scales.data(),
                       null32.data(), null32.data(), head_off, d_head, n_ctx,
                       0.25f, 0.0f, nullptr, nullptr, s_q4.data(),
                       o_q4.data());
  attn_fused_gather(q.data(), k_rows.data(), v_rows.data(), head_off, d_head,
                    n_ctx, 0.25f, 0.0f, nullptr, nullptr, s_fp.data(),
                    o_fp.data());
  EXPECT_LE(max_abs_diff_span(o_q4.data(), o_fp.data(), d_head), 0.15f)
      << "d_head=" << d_head << " n_ctx=" << n_ctx;
}

TEST(FusedAttention, Q4AllMaskedYieldsZeros) {
  const size_t d_head = 32, n_ctx = 23;
  const auto q = random_vec(d_head, 1851);
  const auto k = random_vec(n_ctx * d_head, 1853);
  const Q4Rows k4(k.data(), n_ctx, d_head);
  const Q4Rows v4(k.data(), n_ctx, d_head);
  const std::vector<const float*> null32(n_ctx, nullptr);
  const std::vector<uint8_t> masked(n_ctx, 1);
  std::vector<float> scores(n_ctx, 42.0f), out(d_head, 42.0f);
  attn_fused_q4_gather(q.data(), k4.rows.data(), v4.rows.data(),
                       k4.row_scales.data(), v4.row_scales.data(),
                       null32.data(), null32.data(), 0, d_head, n_ctx, 1.0f,
                       0.0f, nullptr, masked.data(), scores.data(),
                       out.data());
  for (float x : out) EXPECT_EQ(x, 0.0f);
  for (float x : scores) EXPECT_EQ(x, 0.0f);
}

TEST(FusedAttention, Q4EmptyContextYieldsZeros) {
  const size_t d_head = 32;
  const auto q = random_vec(d_head, 1861);
  std::vector<float> out(d_head, 42.0f);
  attn_fused_q4_gather(q.data(), nullptr, nullptr, nullptr, nullptr, nullptr,
                       nullptr, 0, d_head, 0, 1.0f, 0.0f, nullptr, nullptr,
                       nullptr, out.data());
  for (float x : out) EXPECT_EQ(x, 0.0f);
}

// ---- mask-hoist regression through the model --------------------------------

// The block mask is computed once per query row and shared across heads.
// This must leave blocked-mask attention bit-identical to the per-module
// encoding path (which sees no mask at all) — the strongest invariant the
// repo owns. RoPE (llama) covers the plain path, MPT covers the hoisted
// ALiBi relative-position vector.
TEST(MaskHoist, BlockedPrefillBitIdenticalToModuleConcat) {
  for (const auto& config : {ModelConfig::llama_tiny(48, 128),
                             ModelConfig::mpt_tiny(48, 128)}) {
    const Model model = Model::random(config, 123);
    Rng rng(7);
    auto rand_tokens = [&](size_t n) {
      std::vector<TokenId> t(n);
      for (auto& x : t) x = static_cast<TokenId>(rng.next_below(48));
      return t;
    };
    const auto mod1 = rand_tokens(11);
    const auto mod2 = rand_tokens(9);
    const auto suffix = rand_tokens(4);

    auto iota_pos = [](size_t n, int start) {
      std::vector<int> p(n);
      std::iota(p.begin(), p.end(), start);
      return p;
    };

    KVCache enc1 = model.make_cache();
    (void)model.forward(mod1, iota_pos(11, 0), enc1);
    KVCache enc2 = model.make_cache();
    (void)model.forward(mod2, iota_pos(9, 11), enc2);
    KVCache cached = model.make_cache();
    cached.append_copy(enc1);
    cached.append_copy(enc2);
    const Tensor cached_logits =
        model.forward(suffix, iota_pos(4, 20), cached);

    std::vector<TokenId> all;
    all.insert(all.end(), mod1.begin(), mod1.end());
    all.insert(all.end(), mod2.begin(), mod2.end());
    all.insert(all.end(), suffix.begin(), suffix.end());
    std::vector<int> blocks;
    blocks.insert(blocks.end(), 11, 1);
    blocks.insert(blocks.end(), 9, 2);
    blocks.insert(blocks.end(), 4, Model::kGlobalBlock);
    KVCache reference = model.make_cache();
    const Tensor ref_logits =
        model.forward_blocked(all, iota_pos(24, 0), blocks, reference);

    EXPECT_EQ(max_abs_diff(cached_logits, ref_logits), 0.0f);
  }
}

}  // namespace
}  // namespace pc
