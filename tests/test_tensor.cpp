// Unit tests for the tensor library: kernels checked against naive
// references, shape contracts, and fp16 conversion.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/fp16.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace pc {
namespace {

Tensor random_tensor(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (float& x : t.span()) x = rng.uniform(-1.0f, 1.0f);
  return t;
}

TEST(Tensor, ConstructionAndIndexing) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.ndim(), 2u);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.shape_str(), "[2, 3]");
}

TEST(Tensor, OutOfBoundsThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at(2, 0), ContractViolation);
  EXPECT_THROW(t.at(0, 3), ContractViolation);
  EXPECT_THROW(t.at(5), ContractViolation);  // wrong ndim
}

TEST(Tensor, FromRejectsSizeMismatch) {
  EXPECT_THROW(Tensor::from({1.0f, 2.0f}, {3}), ContractViolation);
  const Tensor t = Tensor::from({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_FLOAT_EQ(t.at(1, 0), 4.0f);
}

TEST(Tensor, ReshapedSharesValues) {
  const Tensor t = Tensor::from({1, 2, 3, 4}, {2, 2});
  const Tensor r = t.reshaped({4});
  EXPECT_FLOAT_EQ(r.at(3), 4.0f);
  EXPECT_THROW(t.reshaped({3}), ContractViolation);
}

TEST(Ops, MatmulMatchesNaive) {
  const Tensor a = random_tensor({5, 7}, 1);
  const Tensor b = random_tensor({7, 4}, 2);
  const Tensor c = matmul(a, b);
  ASSERT_EQ(c.shape(), (std::vector<int64_t>{5, 4}));
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      float ref = 0;
      for (int64_t k = 0; k < 7; ++k) ref += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), ref, 1e-5f);
    }
  }
}

TEST(Ops, MatmulNtMatchesMatmul) {
  const Tensor a = random_tensor({6, 8}, 3);
  const Tensor bt = random_tensor({5, 8}, 4);  // B^T stored [n, k]
  Tensor b({8, 5});
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t k = 0; k < 8; ++k) b.at(k, i) = bt.at(i, k);
  }
  const Tensor via_nt = matmul_nt(a, bt);
  const Tensor via_mm = matmul(a, b);
  EXPECT_LE(max_abs_diff(via_nt, via_mm), 1e-5f);
}

TEST(Ops, MatmulShapeContracts) {
  const Tensor a = random_tensor({2, 3}, 5);
  const Tensor bad = random_tensor({4, 2}, 6);
  EXPECT_THROW(matmul(a, bad), ContractViolation);
  EXPECT_THROW(matmul_nt(a, random_tensor({4, 4}, 7)), ContractViolation);
}

TEST(Ops, SoftmaxNormalizesAndIsStable) {
  std::vector<float> row = {1000.0f, 1001.0f, 999.0f};
  softmax_inplace(row.data(), row.size());
  float sum = 0;
  for (float x : row) {
    EXPECT_TRUE(std::isfinite(x));
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(row[1], row[0]);
  EXPECT_GT(row[0], row[2]);
}

TEST(Ops, SoftmaxHandlesMinusInfinity) {
  std::vector<float> row = {0.0f, -std::numeric_limits<float>::infinity(),
                            0.0f};
  softmax_inplace(row.data(), row.size());
  EXPECT_FLOAT_EQ(row[1], 0.0f);
  EXPECT_NEAR(row[0], 0.5f, 1e-6f);
}

TEST(Ops, RmsNormMatchesDefinition) {
  const size_t n = 8;
  std::vector<float> x(n), w(n, 2.0f), out(n);
  Rng rng(8);
  for (auto& v : x) v = rng.uniform(-2, 2);
  rmsnorm(x.data(), w.data(), out.data(), n, 1e-5f);
  float ss = 0;
  for (float v : x) ss += v * v;
  const float inv = 1.0f / std::sqrt(ss / n + 1e-5f);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(out[i], x[i] * inv * 2.0f, 1e-5f);
  }
}

TEST(Ops, LayerNormZeroMeanUnitVar) {
  const size_t n = 16;
  std::vector<float> x(n), w(n, 1.0f), out(n);
  Rng rng(9);
  for (auto& v : x) v = rng.uniform(-3, 3);
  layernorm(x.data(), w.data(), nullptr, out.data(), n, 1e-6f);
  float mean = 0, var = 0;
  for (float v : out) mean += v;
  mean /= n;
  for (float v : out) var += (v - mean) * (v - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0f, 1e-4f);
  EXPECT_NEAR(var, 1.0f, 1e-3f);
}

TEST(Ops, SiluAndGeluValues) {
  std::vector<float> x = {0.0f, 1.0f, -1.0f};
  auto y = x;
  silu_inplace(y.data(), y.size());
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_NEAR(y[1], 1.0f / (1.0f + std::exp(-1.0f)), 1e-6f);

  auto g = x;
  gelu_inplace(g.data(), g.size());
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_NEAR(g[1], 0.8412f, 1e-3f);
  EXPECT_NEAR(g[2], -0.1588f, 1e-3f);
}

TEST(Ops, ElementwiseHelpers) {
  Tensor a = Tensor::from({1, 2, 3}, {3});
  const Tensor b = Tensor::from({10, 20, 30}, {3});
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at(2), 33.0f);
  scale_inplace(a, 0.5f);
  EXPECT_FLOAT_EQ(a.at(0), 5.5f);
  Tensor c = Tensor::from({2, 2, 2}, {3});
  mul_inplace(c, b);
  EXPECT_FLOAT_EQ(c.at(1), 40.0f);
  EXPECT_THROW(add_inplace(a, Tensor({4})), ContractViolation);
}

TEST(Fp16, RoundTripsCommonValues) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.25f, 65504.0f}) {
    EXPECT_FLOAT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(Fp16, SubnormalsAndOverflow) {
  // Smallest positive half subnormal is 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_FLOAT_EQ(half_to_float(float_to_half(tiny)), tiny);
  // Overflow saturates to infinity.
  EXPECT_TRUE(std::isinf(half_to_float(float_to_half(1e6f))));
  // NaN stays NaN.
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(NAN))));
}

TEST(Fp16, RelativeErrorBounded) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-100.0f, 100.0f);
    const float r = half_to_float(float_to_half(v));
    EXPECT_NEAR(r, v, std::abs(v) * 1e-3f + 1e-6f);
  }
}

TEST(Fp16, BulkConversionHelpers) {
  const std::vector<float> src = {1.0f, -2.0f, 0.25f};
  const auto half = to_half(src);
  const auto back = to_float(half);
  ASSERT_EQ(back.size(), src.size());
  for (size_t i = 0; i < src.size(); ++i) EXPECT_FLOAT_EQ(back[i], src[i]);
}

}  // namespace
}  // namespace pc
