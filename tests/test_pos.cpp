// Unit tests for positional encodings: RoPE lookup tables, ALiBi slopes,
// and absolute-position tables — including the relative-position properties
// Prompt Cache depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "pos/alibi.h"
#include "pos/embedding_table.h"
#include "pos/rope.h"
#include "tensor/ops.h"

namespace pc {
namespace {

TEST(Rope, PositionZeroIsIdentity) {
  const RopeTable rope(8, 32);
  std::vector<float> x = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto orig = x;
  rope.apply(x.data(), 0);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(x[i], orig[i]);
}

TEST(Rope, RotationPreservesNorm) {
  const RopeTable rope(16, 128);
  Rng rng(1);
  std::vector<float> x(16);
  for (auto& v : x) v = rng.uniform(-1, 1);
  float norm_before = 0;
  for (float v : x) norm_before += v * v;
  rope.apply(x.data(), 77);
  float norm_after = 0;
  for (float v : x) norm_after += v * v;
  EXPECT_NEAR(norm_before, norm_after, 1e-4f);
}

// The defining RoPE property: <R(p)q, R(p')k> depends only on p - p'.
// This is what makes cached (pre-rotated) keys reusable: queries at any
// later position see the correct relative offset.
TEST(Rope, InnerProductDependsOnlyOnRelativeOffset) {
  const int d = 16;
  const RopeTable rope(d, 512);
  Rng rng(2);
  std::vector<float> q(d), k(d);
  for (auto& v : q) v = rng.uniform(-1, 1);
  for (auto& v : k) v = rng.uniform(-1, 1);

  auto rotated_dot = [&](int qp, int kp) {
    auto qr = q;
    auto kr = k;
    rope.apply(qr.data(), qp);
    rope.apply(kr.data(), kp);
    return dot(qr.data(), kr.data(), d);
  };

  const float a = rotated_dot(10, 3);
  const float b = rotated_dot(110, 103);
  const float c = rotated_dot(402, 395);
  EXPECT_NEAR(a, b, 1e-4f);
  EXPECT_NEAR(a, c, 1e-4f);
}

TEST(Rope, RejectsOutOfRangePositionsAndOddDims) {
  const RopeTable rope(8, 16);
  std::vector<float> x(8, 1.0f);
  EXPECT_THROW(rope.apply(x.data(), 16), ContractViolation);
  EXPECT_THROW(rope.apply(x.data(), -1), ContractViolation);
  EXPECT_THROW(RopeTable(7, 16), ContractViolation);
}

TEST(Alibi, PowerOfTwoSlopesAreGeometric) {
  const auto slopes = Alibi::make_slopes(8);
  ASSERT_EQ(slopes.size(), 8u);
  EXPECT_NEAR(slopes[0], std::pow(2.0, -1.0), 1e-6);
  for (size_t i = 1; i < slopes.size(); ++i) {
    EXPECT_NEAR(slopes[i] / slopes[i - 1], slopes[0], 1e-5);
  }
}

TEST(Alibi, NonPowerOfTwoHeadCount) {
  const auto slopes = Alibi::make_slopes(6);
  ASSERT_EQ(slopes.size(), 6u);
  // First four follow the n=4 schedule, the rest interleave from n=8.
  EXPECT_NEAR(slopes[0], std::pow(2.0, -2.0), 1e-6);
  EXPECT_NEAR(slopes[4], std::pow(2.0, -1.0), 1e-6);
  for (float s : slopes) {
    EXPECT_GT(s, 0.0f);
    EXPECT_LT(s, 1.0f);
  }
}

TEST(Alibi, BiasIsLinearInDistance) {
  const Alibi alibi(4);
  EXPECT_FLOAT_EQ(alibi.bias(0, 10, 10), 0.0f);
  const float d1 = alibi.bias(0, 10, 9);
  const float d2 = alibi.bias(0, 10, 8);
  EXPECT_LT(d1, 0.0f);
  EXPECT_NEAR(d2, 2 * d1, 1e-6f);
  // Relocation invariance: bias depends only on the difference.
  EXPECT_FLOAT_EQ(alibi.bias(2, 100, 95), alibi.bias(2, 1005, 1000));
}

TEST(PositionTable, SinusoidalIsDeterministicAndBounded) {
  const PositionTable t = PositionTable::sinusoidal(64, 32);
  EXPECT_EQ(t.max_pos(), 64);
  for (int p = 0; p < 64; ++p) {
    for (int i = 0; i < 32; ++i) {
      EXPECT_LE(std::abs(t.row(p)[i]), 1.0f);
    }
  }
  // Position 0: sin rows are 0, cos rows are 1.
  EXPECT_FLOAT_EQ(t.row(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(t.row(0)[1], 1.0f);
}

TEST(PositionTable, LearnedIsSeededAndRangeChecked) {
  Rng a(5), b(5);
  const PositionTable ta = PositionTable::learned(16, 8, a);
  const PositionTable tb = PositionTable::learned(16, 8, b);
  EXPECT_EQ(max_abs_diff(ta.tensor(), tb.tensor()), 0.0f);
  EXPECT_THROW(ta.row(16), ContractViolation);
  EXPECT_THROW(ta.row(-1), ContractViolation);
}

}  // namespace
}  // namespace pc
