// Unit tests for the latency histogram and its engine integration.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "core/engine.h"
#include "eval/workload.h"
#include "model/induction.h"

namespace pc {
namespace {

TEST(Histogram, EmptyIsZeroed) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0);
}

TEST(Histogram, MeanMinMaxExact) {
  LatencyHistogram h;
  h.record_ms(1.0);
  h.record_ms(3.0);
  h.record_ms(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.mean_seconds(), 2e-3, 1e-12);
  EXPECT_NEAR(h.min_seconds(), 1e-3, 1e-12);
  EXPECT_NEAR(h.max_seconds(), 3e-3, 1e-12);
}

TEST(Histogram, QuantilesWithinBucketError) {
  // Geometric buckets at 2^(1/4): quantile error is bounded by ~19%.
  LatencyHistogram h;
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double s = std::exp(rng.uniform(-9.0f, -2.0f));  // e^-9..e^-2 s
    samples.push_back(s);
    h.record_seconds(s);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = samples[static_cast<size_t>(q * samples.size())];
    const double est = h.quantile_seconds(q);
    EXPECT_NEAR(est / exact, 1.0, 0.20) << "q=" << q;
  }
}

TEST(Histogram, QuantileIsMonotonic) {
  LatencyHistogram h;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    h.record_ms(rng.uniform(0.01f, 100.0f));
  }
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile_seconds(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, QuantileZeroIsExactMinimum) {
  // Regression: q=0 used to be bucketized like any other quantile,
  // returning the first occupied bucket's upper edge (up to 19% above the
  // smallest sample). The minimum is tracked exactly — return it.
  LatencyHistogram h;
  h.record_ms(1.0);
  h.record_ms(100.0);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.0), h.min_seconds());
  // Still zero when empty, and still monotonic against q>0 reads.
  EXPECT_DOUBLE_EQ(LatencyHistogram().quantile_seconds(0.0), 0.0);
  EXPECT_LE(h.quantile_seconds(0.0), h.quantile_seconds(0.01));
}

TEST(Histogram, QuantileZeroSurvivesMergeAcrossLayouts) {
  LatencyHistogram coarse(/*min_seconds=*/1e-3, /*buckets_per_doubling=*/1);
  coarse.record_seconds(0.25);
  LatencyHistogram fine;  // default layout
  fine.record_seconds(0.004);
  fine.merge(coarse);  // differing layouts: counts rebucket, extrema exact
  EXPECT_DOUBLE_EQ(fine.quantile_seconds(0.0), 0.004);

  // Merge in the other direction: the smaller minimum wins.
  LatencyHistogram fine2;
  fine2.record_seconds(0.0005);
  fine2.merge(coarse);
  EXPECT_DOUBLE_EQ(fine2.quantile_seconds(0.0), 0.0005);
}

TEST(Histogram, ExtremesClampToBucketRange) {
  LatencyHistogram h;
  h.record_seconds(1e-9);   // below first bucket
  h.record_seconds(1e6);    // above last bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.quantile_seconds(1.0), 0.0);
  EXPECT_THROW(h.quantile_seconds(1.5), ContractViolation);
}

TEST(Histogram, EmptyPercentilesAreZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.p50_ms(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99_ms(), 0.0);
}

TEST(Histogram, SingleSamplePercentilesCoincide) {
  LatencyHistogram h;
  h.record_ms(3.0);
  // Every quantile lands in the one occupied bucket, so p50 == p99 and
  // both are that bucket's upper edge: >= the sample, within one bucket
  // width (2^(1/4) ≈ 19%) above it.
  EXPECT_DOUBLE_EQ(h.p50_ms(), h.p99_ms());
  EXPECT_GE(h.p50_ms(), 3.0);
  EXPECT_LE(h.p50_ms(), 3.0 * 1.20);
}

TEST(Histogram, MergeSameLayoutIsExact) {
  LatencyHistogram a, b, combined;
  for (double ms : {1.0, 4.0, 9.0}) {
    a.record_ms(ms);
    combined.record_ms(ms);
  }
  for (double ms : {2.0, 16.0}) {
    b.record_ms(ms);
    combined.record_ms(ms);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum_seconds(), combined.sum_seconds());
  EXPECT_DOUBLE_EQ(a.min_seconds(), combined.min_seconds());
  EXPECT_DOUBLE_EQ(a.max_seconds(), combined.max_seconds());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile_seconds(q), combined.quantile_seconds(q));
  }
}

TEST(Histogram, MergeEmptyIsNoop) {
  LatencyHistogram a;
  a.record_ms(5.0);
  const double p50_before = a.p50_ms();
  LatencyHistogram empty(/*min_seconds=*/1e-3, /*buckets_per_doubling=*/1);
  a.merge(empty);  // differing layout, but empty: must change nothing
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.p50_ms(), p50_before);
}

TEST(Histogram, MergeDifferingLayoutRebuckets) {
  // Coarse source layout: floor 1 ms, one bucket per doubling. A 10 ms
  // sample occupies the bucket whose upper edge is 16 ms.
  LatencyHistogram coarse(/*min_seconds=*/1e-3, /*buckets_per_doubling=*/1);
  coarse.record_seconds(0.010);

  LatencyHistogram fine;  // default layout: 1 µs floor, 2^(1/4) buckets
  fine.record_seconds(0.001);
  fine.merge(coarse);

  EXPECT_FALSE(fine.same_layout(coarse));
  // Counts/sums/extrema merge exactly regardless of layout.
  EXPECT_EQ(fine.count(), 2u);
  EXPECT_NEAR(fine.sum_seconds(), 0.011, 1e-12);
  EXPECT_NEAR(fine.max_seconds(), 0.010, 1e-12);
  EXPECT_NEAR(fine.min_seconds(), 0.001, 1e-12);
  // The rebucketed sample is folded in at its source bucket's upper edge
  // (16 ms), then lands in the destination bucket covering that value:
  // p100 within one fine bucket (19%) above 16 ms.
  const double p100 = fine.quantile_seconds(1.0);
  EXPECT_GE(p100, 0.016);
  EXPECT_LE(p100, 0.016 * 1.20);
}

TEST(Histogram, MergeManySamplesAcrossLayoutsKeepsQuantileBound) {
  LatencyHistogram coarse(/*min_seconds=*/1e-4, /*buckets_per_doubling=*/2);
  LatencyHistogram fine;
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const double s = std::exp(rng.uniform(-8.0f, -3.0f));
    samples.push_back(s);
    coarse.record_seconds(s);
  }
  fine.merge(coarse);
  EXPECT_EQ(fine.count(), coarse.count());
  std::sort(samples.begin(), samples.end());
  // Rebucketing rounds each sample up by at most one coarse bucket
  // (2^(1/2) ≈ 41%) and the fine read adds one fine bucket (19%), so the
  // estimate stays within [exact, exact * 1.7].
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = samples[static_cast<size_t>(q * samples.size())];
    const double est = fine.quantile_seconds(q);
    EXPECT_GE(est / exact, 0.95) << "q=" << q;
    EXPECT_LE(est / exact, 1.75) << "q=" << q;
  }
}

TEST(Histogram, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.record_ms(5.0);
  const std::string s = h.summary();
  EXPECT_NE(s.find("p50"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(Histogram, EngineRecordsServeLatencies) {
  AccuracyWorkload workload(7);
  Model model = make_induction_model({workload.vocab().size(), 256});
  PromptCacheEngine engine(model, workload.tokenizer());
  engine.load_schema(R"(
    <schema name="t"><module name="doc">w00 q05 a10 . w01</module></schema>)");
  GenerateOptions opts;
  opts.max_new_tokens = 2;
  opts.stop_tokens = {workload.stop_token()};

  const char* prompt = R"(<prompt schema="t"><doc/> question: q05</prompt>)";
  for (int i = 0; i < 8; ++i) (void)engine.serve(prompt, opts);
  for (int i = 0; i < 3; ++i) (void)engine.serve_baseline(prompt, opts);

  EXPECT_EQ(engine.cached_ttft_histogram().count(), 8u);
  EXPECT_EQ(engine.baseline_ttft_histogram().count(), 3u);
  EXPECT_GT(engine.cached_ttft_histogram().p50_ms(), 0.0);
  // Cached TTFT should be under baseline. Compare medians: with the
  // vectorized kernels both paths on this toy prompt run near the OS
  // scheduling-noise floor, so a single stray millisecond-scale hiccup in
  // the tail must not decide the comparison.
  EXPECT_LT(engine.cached_ttft_histogram().p50_ms(),
            engine.baseline_ttft_histogram().p50_ms());
}

}  // namespace
}  // namespace pc
