// Unit tests for the latency histogram and its engine integration.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "core/engine.h"
#include "eval/workload.h"
#include "model/induction.h"

namespace pc {
namespace {

TEST(Histogram, EmptyIsZeroed) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0);
}

TEST(Histogram, MeanMinMaxExact) {
  LatencyHistogram h;
  h.record_ms(1.0);
  h.record_ms(3.0);
  h.record_ms(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.mean_seconds(), 2e-3, 1e-12);
  EXPECT_NEAR(h.min_seconds(), 1e-3, 1e-12);
  EXPECT_NEAR(h.max_seconds(), 3e-3, 1e-12);
}

TEST(Histogram, QuantilesWithinBucketError) {
  // Geometric buckets at 2^(1/4): quantile error is bounded by ~19%.
  LatencyHistogram h;
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double s = std::exp(rng.uniform(-9.0f, -2.0f));  // e^-9..e^-2 s
    samples.push_back(s);
    h.record_seconds(s);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = samples[static_cast<size_t>(q * samples.size())];
    const double est = h.quantile_seconds(q);
    EXPECT_NEAR(est / exact, 1.0, 0.20) << "q=" << q;
  }
}

TEST(Histogram, QuantileIsMonotonic) {
  LatencyHistogram h;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    h.record_ms(rng.uniform(0.01f, 100.0f));
  }
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile_seconds(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, ExtremesClampToBucketRange) {
  LatencyHistogram h;
  h.record_seconds(1e-9);   // below first bucket
  h.record_seconds(1e6);    // above last bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.quantile_seconds(1.0), 0.0);
  EXPECT_THROW(h.quantile_seconds(1.5), ContractViolation);
}

TEST(Histogram, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.record_ms(5.0);
  const std::string s = h.summary();
  EXPECT_NE(s.find("p50"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(Histogram, EngineRecordsServeLatencies) {
  AccuracyWorkload workload(7);
  Model model = make_induction_model({workload.vocab().size(), 256});
  PromptCacheEngine engine(model, workload.tokenizer());
  engine.load_schema(R"(
    <schema name="t"><module name="doc">w00 q05 a10 . w01</module></schema>)");
  GenerateOptions opts;
  opts.max_new_tokens = 2;
  opts.stop_tokens = {workload.stop_token()};

  const char* prompt = R"(<prompt schema="t"><doc/> question: q05</prompt>)";
  for (int i = 0; i < 8; ++i) (void)engine.serve(prompt, opts);
  for (int i = 0; i < 3; ++i) (void)engine.serve_baseline(prompt, opts);

  EXPECT_EQ(engine.cached_ttft_histogram().count(), 8u);
  EXPECT_EQ(engine.baseline_ttft_histogram().count(), 3u);
  EXPECT_GT(engine.cached_ttft_histogram().p50_ms(), 0.0);
  // Cached TTFT should be under baseline. Compare medians: with the
  // vectorized kernels both paths on this toy prompt run near the OS
  // scheduling-noise floor, so a single stray millisecond-scale hiccup in
  // the tail must not decide the comparison.
  EXPECT_LT(engine.cached_ttft_histogram().p50_ms(),
            engine.baseline_ttft_histogram().p50_ms());
}

}  // namespace
}  // namespace pc
