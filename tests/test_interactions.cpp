// Cross-feature interaction tests: the serving features must compose —
// scaffolds under zero-copy, scaffold registration after a persistence
// restart, precision x persistence x serving, prefetch under pressure with
// pinned modules.
#include <gtest/gtest.h>

#include <cstdio>

#include "prompt_cache.h"  // umbrella header: must stay self-contained

namespace pc {
namespace {

class InteractionTest : public ::testing::Test {
 protected:
  InteractionTest()
      : workload_(7),
        model_(make_induction_model({workload_.vocab().size(), 384})) {}

  GenerateOptions answer_options() const {
    GenerateOptions o;
    o.max_new_tokens = 5;
    o.stop_tokens = {workload_.stop_token()};
    return o;
  }

  static constexpr const char* kSplitSchema = R"(
    <schema name="sx">
      <module name="pa">w00 w01 q05</module>
      <module name="pb">a10 a11 . w02</module>
      <module name="other">w03 q06 a12 a13 . w04</module>
    </schema>)";
  static constexpr const char* kSplitPrompt =
      R"(<prompt schema="sx"><pa/><pb/><other/> question: q05</prompt>)";

  AccuracyWorkload workload_;
  Model model_;
};

TEST_F(InteractionTest, ScaffoldWorksUnderZeroCopy) {
  EngineConfig cfg;
  cfg.zero_copy = true;
  PromptCacheEngine engine(model_, workload_.tokenizer(), cfg);
  engine.load_schema(kSplitSchema);
  engine.add_scaffold("sx", {"pa", "pb"});

  const ServeResult r = engine.serve(kSplitPrompt, answer_options());
  EXPECT_EQ(r.text, "a10 a11");  // joint states restored the straddling fact
  EXPECT_EQ(r.ttft.bytes_from_host + r.ttft.bytes_from_device, 0u);
  EXPECT_GT(r.ttft.bytes_zero_copy, 0u);
}

TEST_F(InteractionTest, ScaffoldSurvivesPersistenceRestart) {
  const std::string path = ::testing::TempDir() + "pc_scaffold_restart.bin";
  {
    PromptCacheEngine writer(model_, workload_.tokenizer());
    writer.load_schema(kSplitSchema);
    writer.add_scaffold("sx", {"pa", "pb"});
    // 3 modules + 1 scaffold persisted.
    EXPECT_EQ(writer.save_modules(path), 4u);
  }
  EngineConfig cfg;
  cfg.eager_encode = false;
  PromptCacheEngine reader(model_, workload_.tokenizer(), cfg);
  reader.load_schema(kSplitSchema);
  reader.add_scaffold("sx", {"pa", "pb"});  // registration, no encoding
  EXPECT_EQ(reader.load_modules(path), 4u);
  EXPECT_EQ(reader.stats().modules_encoded, 0u);
  EXPECT_EQ(reader.stats().scaffolds_encoded, 0u);

  const ServeResult r = reader.serve(kSplitPrompt, answer_options());
  EXPECT_EQ(r.text, "a10 a11");
  EXPECT_EQ(reader.stats().modules_encoded, 0u)
      << "restored states must be used, not re-encoded";
  std::remove(path.c_str());
}

TEST_F(InteractionTest, Q8PersistenceServesCorrectly) {
  const std::string path = ::testing::TempDir() + "pc_q8_restart.bin";
  EngineConfig cfg;
  cfg.precision = StorePrecision::kQ8;
  {
    PromptCacheEngine writer(model_, workload_.tokenizer(), cfg);
    writer.load_schema(kSplitSchema);
    writer.save_modules(path);
  }
  EngineConfig rcfg = cfg;
  rcfg.eager_encode = false;
  PromptCacheEngine reader(model_, workload_.tokenizer(), rcfg);
  reader.load_schema(kSplitSchema);
  reader.load_modules(path);
  const ServeResult r = reader.serve(
      R"(<prompt schema="sx"><other/> question: q06</prompt>)",
      answer_options());
  EXPECT_EQ(r.text, "a12 a13");
  std::remove(path.c_str());
}

TEST_F(InteractionTest, SessionOverZeroCopyEngineUsesCopyAssembly) {
  // Sessions own a contiguous cache regardless of the engine's zero-copy
  // mode (a session outlives individual serves, so borrowing would pin
  // modules indefinitely). They must still work on such an engine.
  EngineConfig cfg;
  cfg.zero_copy = true;
  PromptCacheEngine engine(model_, workload_.tokenizer(), cfg);
  engine.load_schema(kSplitSchema);
  ChatSession session(
      engine, R"(<prompt schema="sx"><other/></prompt>)",
      /*wrap_turns=*/false);
  const auto r = session.send("question: q06", answer_options());
  EXPECT_EQ(r.text, "a12 a13");
}

TEST_F(InteractionTest, PrefetchAndPinningCompose) {
  // Pin the scaffold-free module; prefetch union siblings around it under
  // capacity pressure. The pinned module must never leave device memory.
  const char* schema = R"(
    <schema name="px">
      <module name="sys">w00 w01 w02 w03 w04 w05</module>
      <union>
        <module name="v0">w06 q01 a10 . w07 w08</module>
        <module name="v1">w09 q01 a11 . w10 w11</module>
        <module name="v2">w12 q01 a12 . w13 w14</module>
      </union>
    </schema>)";
  const size_t module_budget =
      static_cast<size_t>(16) * model_.kv_bytes_per_token();
  EngineConfig cfg;
  cfg.device_capacity_bytes = module_budget;  // sys + ~1 variant
  cfg.prefetch_union_siblings = true;
  PromptCacheEngine engine(model_, workload_.tokenizer(), cfg);
  engine.load_schema(schema);
  engine.pin_module("px", "sys");

  GenerateOptions opts = answer_options();
  for (const char* variant : {"v0", "v1", "v2", "v1"}) {
    const std::string prompt = std::string("<prompt schema=\"px\"><sys/><") +
                               variant + "/> question: q01</prompt>";
    const ServeResult r = engine.serve(prompt, opts);
    EXPECT_FALSE(r.text.empty());
  }
  EXPECT_TRUE(engine.store().is_pinned("px::sys"));
  ModuleLocation loc;
  ASSERT_NE(engine.store().find("px::sys", &loc), nullptr);
  EXPECT_EQ(loc, ModuleLocation::kDeviceMemory);
}

TEST_F(InteractionTest, BatchWithScaffoldsAccountsScaffoldOnce) {
  PromptCacheEngine engine(model_, workload_.tokenizer());
  engine.load_schema(kSplitSchema);
  engine.add_scaffold("sx", {"pa", "pb"});

  PromptCacheEngine::BatchStats stats;
  const std::vector<std::string> batch = {
      kSplitPrompt,
      R"(<prompt schema="sx"><pa/><pb/> question: q05</prompt>)",
  };
  const auto results = engine.serve_batch(batch, answer_options(), &stats);
  EXPECT_EQ(results[0].text, "a10 a11");
  EXPECT_EQ(results[1].text, "a10 a11");
  // The scaffold's payload counts once, then registers as avoided bytes.
  EXPECT_GT(stats.duplicate_module_bytes_avoided, 0u);
}

}  // namespace
}  // namespace pc
