// Tiered module store (docs/INTERNALS.md §15): disk spill + async prefetch.
//
//   * split_capacity accounting: shard slices sum EXACTLY to the configured
//     totals (the clamp-to-1 over-commit is fixed), and a module that fits
//     the total but not a 1/N slice raises a CacheError that says so;
//   * spill / fault-in round trips are bitwise: a RAM-capped store backed
//     by the disk tier serves byte-identical tokens to an uncapped one;
//   * prefetch() overlaps disk reads with serving, dedups against demand
//     fault-ins through the single-flight map, and the hit/miss accounting
//     reconciles exactly (conservation law below);
//   * crash atomicity: engine save_modules() and spill files are written
//     tmp+flush+rename, so a simulated partial write is invisible after
//     restart;
//   * injected disk faults (PC_FAULTS diskread/diskwrite) degrade fault-ins
//     to re-encodes and spills to destroy-evictions — availability stays
//     1.0 and the pc_store_disk_* counters still reconcile.
//
// Conservation law, exact at quiescence (every spill record is eventually
// consumed by exactly one of fault-in / eviction / failed read, or is still
// on disk):  spills == faults + evictions + read_failures + spilled.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/serialize.h"
#include "core/shared_module_store.h"
#include "eval/workload.h"
#include "model/induction.h"
#include "sys/fault.h"
#include "sys/server.h"

namespace pc {
namespace {

// Every test leaves the injector disarmed, whatever PC_FAULTS says; tests
// that want faults configure their own (same posture as test_faults.cpp).
class TieredStoreTest : public ::testing::Test {
 protected:
  TieredStoreTest() { FaultInjector::global().disable(); }
  ~TieredStoreTest() override { FaultInjector::global().disable(); }

  static DiskTierConfig disk_config() {
    DiskTierConfig d;
    d.enabled = true;
    d.dir = ::testing::TempDir();
    return d;
  }
};

// A payload with real, distinctive fp32 states (so spill round trips can be
// checked bitwise): bytes_per_token = kv_dim * 2 * n_layers * 4 = 64.
EncodedModule make_real_payload(int n_tokens, float seed) {
  EncodedModule m;
  m.n_tokens = n_tokens;
  m.kv_dim = 4;
  m.n_layers = 2;
  m.kv32.emplace(m.n_layers, m.kv_dim);
  std::vector<int> pos(static_cast<size_t>(n_tokens));
  for (int i = 0; i < n_tokens; ++i) pos[static_cast<size_t>(i)] = i;
  m.kv32->append_tokens(pos);
  for (int l = 0; l < m.n_layers; ++l) {
    for (int t = 0; t < n_tokens; ++t) {
      for (int e = 0; e < m.kv_dim; ++e) {
        const float v = seed + 100.0f * l + 10.0f * t + e;
        m.kv32->k_row(l, t)[e] = v;
        m.kv32->v_row(l, t)[e] = -v;
      }
    }
  }
  m.text_row_ranges = {{0, n_tokens}};
  return m;
}

bool payloads_bitwise_equal(const EncodedModule& a, const EncodedModule& b) {
  if (a.n_tokens != b.n_tokens || a.kv_dim != b.kv_dim ||
      a.n_layers != b.n_layers) {
    return false;
  }
  for (int l = 0; l < a.n_layers; ++l) {
    for (int t = 0; t < a.n_tokens; ++t) {
      for (int e = 0; e < a.kv_dim; ++e) {
        if (a.kv32->k_row(l, t)[e] != b.kv32->k_row(l, t)[e]) return false;
        if (a.kv32->v_row(l, t)[e] != b.kv32->v_row(l, t)[e]) return false;
      }
    }
  }
  return true;
}

// An 8-byte payload (kv_dim 1, 1 layer, 1 token) for capacity-accounting
// tests where whole-module granularity would hide the arithmetic.
EncodedModule tiny_payload(int n_tokens) {
  EncodedModule m;
  m.n_tokens = n_tokens;
  m.kv_dim = 1;
  m.n_layers = 1;
  m.kv32.emplace(1, 1);
  std::vector<int> pos(static_cast<size_t>(n_tokens));
  for (int i = 0; i < n_tokens; ++i) pos[static_cast<size_t>(i)] = i;
  m.kv32->append_tokens(pos);
  return m;
}

void check_conservation(const DiskTierStats& d) {
  EXPECT_EQ(d.spills,
            d.faults + d.evictions + d.read_failures + d.spilled)
      << "spills=" << d.spills << " faults=" << d.faults
      << " evictions=" << d.evictions
      << " read_failures=" << d.read_failures << " spilled=" << d.spilled;
}

// ---------------------------------------------------------------------------
// Satellite: split_capacity accounting.

TEST_F(TieredStoreTest, ShardSlicesSumExactlyToConfiguredTotals) {
  // Regression: with capacity < n_shards the old clamp gave every shard
  // max(total/n, 1) = 1 byte, so 8 shards of a 4-byte store could admit 8
  // bytes — more than configured. Slices must sum exactly.
  SharedModuleStore store(/*device=*/4, /*host=*/3, /*n_shards=*/8);
  EXPECT_EQ(store.usage(ModuleLocation::kDeviceMemory).capacity_bytes, 4u);
  EXPECT_EQ(store.usage(ModuleLocation::kHostMemory).capacity_bytes, 3u);

  SharedModuleStore even(/*device=*/1000, /*host=*/999, /*n_shards=*/8);
  EXPECT_EQ(even.usage(ModuleLocation::kDeviceMemory).capacity_bytes, 1000u);
  EXPECT_EQ(even.usage(ModuleLocation::kHostMemory).capacity_bytes, 999u);

  // 0 still means unlimited, not a closed 0-byte slice.
  SharedModuleStore unlimited(/*device=*/0, /*host=*/0, /*n_shards=*/8);
  unlimited.insert("k", tiny_payload(4));
  EXPECT_TRUE(unlimited.contains("k"));
}

TEST_F(TieredStoreTest, OverSliceUnderTotalRaisesShardingError) {
  // Totals of 12 bytes over 8 shards: every slice is 1 or 2 bytes. An
  // 8-byte module fits the configured total but no slice — the error must
  // name the sharding problem, not claim the store is too small.
  SharedModuleStore store(/*device=*/12, /*host=*/12, /*n_shards=*/8);
  try {
    store.insert("k", tiny_payload(1));  // 8 bytes
    FAIL() << "insert must throw CacheError";
  } catch (const CacheError& e) {
    EXPECT_NE(std::string(e.what()).find("per-shard slice"),
              std::string::npos)
        << e.what();
  }

  // A 16-byte module exceeds the totals themselves: the plain capacity
  // error, no sharding hint.
  try {
    store.insert("k", tiny_payload(2));
    FAIL() << "insert must throw CacheError";
  } catch (const CacheError& e) {
    EXPECT_EQ(std::string(e.what()).find("per-shard slice"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(TieredStoreTest, EnvConfigEnablesAndBoundsTheDiskTier) {
  // PC_DISK_DIR / PC_DISK_CAPACITY drive any store built without an
  // explicit DiskTierConfig (the 3-arg constructor).
  const std::string dir = ::testing::TempDir() + "pc_env_disk";
  std::filesystem::create_directories(dir);
  setenv("PC_DISK_DIR", dir.c_str(), 1);
  setenv("PC_DISK_CAPACITY", "128", 1);
  {
    SharedModuleStore store(/*device=*/128, /*host=*/1, /*n_shards=*/1);
    ASSERT_TRUE(store.disk_enabled());

    // RAM holds one 128-byte payload; overflow spills under PC_DISK_DIR.
    store.insert("a", make_real_payload(2, 1.0f));
    store.insert("b", make_real_payload(2, 2.0f));  // "a" spills
    EXPECT_EQ(store.disk_stats().spills, 1u);
    bool spill_file_in_dir = false;
    for (const auto& e :
         std::filesystem::recursive_directory_iterator(dir)) {
      if (e.path().extension() == ".pcmod") spill_file_in_dir = true;
    }
    EXPECT_TRUE(spill_file_in_dir);

    // Fault-in round trip stays bitwise through the env-configured tier.
    auto ref = store.find("a");  // "b" spills to make room
    ASSERT_TRUE(ref);
    EXPECT_TRUE(payloads_bitwise_equal(*ref, make_real_payload(2, 1.0f)));

    // The 128-byte disk budget admits one record: spilling "a" again must
    // destroy the coldest spilled record ("b") instead of growing the tier.
    store.insert("c", make_real_payload(2, 3.0f));
    const DiskTierStats d = store.disk_stats();
    EXPECT_EQ(d.evictions, 1u);
    EXPECT_FALSE(store.contains("b"));
    EXPECT_TRUE(store.contains("a"));
    check_conservation(d);
  }
  unsetenv("PC_DISK_DIR");
  unsetenv("PC_DISK_CAPACITY");

  // Without PC_DISK_DIR the default-config store has no disk tier.
  SharedModuleStore plain(/*device=*/128, /*host=*/1, /*n_shards=*/1);
  EXPECT_FALSE(plain.disk_enabled());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Tentpole: spill, fault-in, prefetch.

TEST_F(TieredStoreTest, SpillAndFaultInRoundTripIsBitwise) {
  // Room for exactly two 64-byte payloads in RAM (device only; host is a
  // closed 1-byte tier), unbounded disk underneath.
  SharedModuleStore store(/*device=*/128, /*host=*/1, disk_config(),
                          /*n_shards=*/1);
  ASSERT_TRUE(store.disk_enabled());

  const EncodedModule a = make_real_payload(1, 1000.0f);
  store.insert("a", make_real_payload(1, 1000.0f));
  store.insert("b", make_real_payload(1, 2000.0f));
  store.insert("c", make_real_payload(1, 3000.0f));  // spills coldest: "a"

  DiskTierStats d = store.disk_stats();
  EXPECT_EQ(d.spills, 1u);
  EXPECT_EQ(d.spilled, 1u);
  EXPECT_EQ(d.spilled_bytes, 64u);
  EXPECT_EQ(store.spilled_count(), 1u);
  EXPECT_TRUE(store.contains("a"));  // reachable, just not RAM-resident
  EXPECT_EQ(store.size(), 2u);       // RAM entries only

  // Demand fault-in through find(): bitwise-identical payload comes back,
  // and the RAM eviction it causes spills the next-coldest entry.
  auto ref = store.find("a");
  ASSERT_TRUE(ref);
  EXPECT_TRUE(payloads_bitwise_equal(*ref, a));

  d = store.disk_stats();
  EXPECT_EQ(d.faults, 1u);
  EXPECT_EQ(d.prefetch_misses, 1u);  // demand fault-in, no prefetch ran
  EXPECT_GT(d.stall_us, 0u);
  check_conservation(d);

  const ModuleStoreStats s = store.stats();
  EXPECT_GE(s.hits, 1u);  // the fault-in counted as a store hit
}

TEST_F(TieredStoreTest, PrefetchTagsEntriesAndHitAccountingReconciles) {
  SharedModuleStore store(/*device=*/128, /*host=*/1, disk_config(),
                          /*n_shards=*/1);
  store.insert("a", make_real_payload(1, 1.0f));
  store.insert("b", make_real_payload(1, 2.0f));
  store.insert("c", make_real_payload(1, 3.0f));  // "a" spills

  // Prefetch faults "a" in ahead of demand (spilling "b" to make room)
  // and tags it; the first lookup that lands on the tag is a prefetch hit.
  EXPECT_TRUE(store.prefetch("a"));
  EXPECT_TRUE(store.find("a"));
  // A second lookup is an ordinary hit — the tag is consumed once.
  EXPECT_TRUE(store.find("a"));

  // "b" was spilled by the prefetch; its demand fault-in is the latency
  // the prefetcher failed to hide — a prefetch miss.
  EXPECT_TRUE(store.find("b"));

  // Prefetch of a RAM-resident key is a cheap recency bump; of an unknown
  // key, a refusal.
  EXPECT_TRUE(store.prefetch("b"));
  EXPECT_FALSE(store.prefetch("nope"));

  const DiskTierStats d = store.disk_stats();
  EXPECT_EQ(d.prefetch_hits, 1u);
  EXPECT_EQ(d.prefetch_misses, 1u);
  EXPECT_EQ(d.faults, 2u);
  EXPECT_DOUBLE_EQ(d.prefetch_hit_rate(), 0.5);
  check_conservation(d);
}

TEST_F(TieredStoreTest, DiskCapacityEvictsColdestSpilledRecords) {
  // Disk holds exactly two 64-byte records; the third spill must destroy
  // the coldest one.
  DiskTierConfig dc = disk_config();
  dc.capacity_bytes = 128;
  SharedModuleStore store(/*device=*/64, /*host=*/1, dc, /*n_shards=*/1);
  store.insert("a", make_real_payload(1, 1.0f));
  store.insert("b", make_real_payload(1, 2.0f));  // a -> disk
  store.insert("c", make_real_payload(1, 3.0f));  // b -> disk
  store.insert("d", make_real_payload(1, 4.0f));  // c -> disk, a destroyed

  EXPECT_FALSE(store.contains("a"));
  EXPECT_TRUE(store.contains("b"));
  EXPECT_TRUE(store.contains("c"));
  const DiskTierStats d = store.disk_stats();
  EXPECT_EQ(d.spills, 3u);
  EXPECT_EQ(d.evictions, 1u);
  EXPECT_EQ(d.spilled, 2u);
  EXPECT_LE(d.spilled_bytes, 128u);
  check_conservation(d);

  // erase()/clear() drop spill records too (counted as disk evictions, so
  // the books still balance).
  store.erase("b");
  EXPECT_FALSE(store.contains("b"));
  store.clear();
  EXPECT_EQ(store.spilled_count(), 0u);
  EXPECT_EQ(store.spilled_bytes(), 0u);
  check_conservation(store.disk_stats());
}

TEST_F(TieredStoreTest, EvictionPrefetchAndEnsureRacesStayConsistent) {
  // Three-way churn on one shard: ensure() leaders, prefetch() fault-ins,
  // and insert/erase pressure all collide on the same keys. Run under TSan
  // by the tiered-chaos CI job; the invariants here catch lost accounting.
  DiskTierConfig dc = disk_config();
  dc.capacity_bytes = 4096;
  SharedModuleStore store(/*device=*/256, /*host=*/256, dc, /*n_shards=*/1);
  constexpr int kKeys = 10;
  constexpr int kIters = 250;
  auto key_of = [](int k) { return "key" + std::to_string(k); };
  std::atomic<int> bad_payloads{0};

  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // demand path
    for (int i = 0; i < kIters; ++i) {
      const int k = (i * 7) % kKeys;
      auto ref = store.ensure(key_of(k), [&] {
        return make_real_payload(1, static_cast<float>(k));
      });
      if (!ref ||
          !payloads_bitwise_equal(*ref,
                                  make_real_payload(1, static_cast<float>(k)))) {
        bad_payloads.fetch_add(1);
      }
    }
  });
  threads.emplace_back([&] {  // prefetch pipeline
    for (int i = 0; i < kIters; ++i) {
      (void)store.prefetch(key_of((i * 3) % kKeys));
    }
  });
  threads.emplace_back([&] {  // capacity churn + administrative erases
    for (int i = 0; i < kIters; ++i) {
      const int k = (i * 5) % kKeys;
      if (i % 10 == 9) {
        store.erase(key_of(k));
      } else {
        store.insert(key_of(k), make_real_payload(1, static_cast<float>(k)));
      }
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_EQ(bad_payloads.load(), 0);
  EXPECT_LE(store.usage(ModuleLocation::kDeviceMemory).used_bytes, 256u);
  EXPECT_LE(store.usage(ModuleLocation::kHostMemory).used_bytes, 256u);
  EXPECT_LE(store.resident_bytes(), store.peak_resident_bytes());
  check_conservation(store.disk_stats());
}

// ---------------------------------------------------------------------------
// Engine + Server over a RAM-capped tiered store.

constexpr char kSchema[] = R"(
  <schema name="c">
    <module name="d1">w00 w01 q05 a10 a11 . w02</module>
    <module name="d2">w03 q06 a12 a13 . w04</module>
    <module name="d3">w05 w06 q07 a14 a15 . w07</module>
    <module name="d4">w08 q08 a16 a17 . w09</module>
  </schema>)";

const char* kAsks[] = {
    R"(<prompt schema="c"><d1/><d2/> question: q05</prompt>)",
    R"(<prompt schema="c"><d1/><d2/> question: q06</prompt>)",
    R"(<prompt schema="c"><d3/><d4/> question: q07</prompt>)",
    R"(<prompt schema="c"><d3/><d4/> question: q08</prompt>)",
    R"(<prompt schema="c"><d1/><d2/><d3/><d4/> question: q07</prompt>)",
    R"(<prompt schema="c"><d2/><d4/> question: q08</prompt>)",
};

GenerateOptions ask_options(const AccuracyWorkload& workload) {
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  opts.stop_tokens = {workload.stop_token()};
  return opts;
}

TEST_F(TieredStoreTest, RamCappedTieredServingIsBitwiseIdentical) {
  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 256});
  const GenerateOptions opts = ask_options(workload);

  // Reference: unlimited private engine.
  PromptCacheEngine reference(model, workload.tokenizer());
  reference.load_schema(kSchema);
  std::vector<std::vector<TokenId>> expected;
  for (const char* ask : kAsks) {
    expected.push_back(reference.serve(ask, opts).tokens);
  }
  size_t max_module = 0;
  reference.store().for_each(
      [&](const std::string&, const EncodedModule& m, ModuleLocation) {
        max_module = std::max(max_module, m.payload_bytes());
      });

  // RAM holds ~1.5 modules of a 4-module working set; everything else
  // cycles through spill files. Without the disk tier this config thrashes
  // with re-encodes (test_shared_store.cpp ThrashReencode); with it, the
  // modules round-trip through disk and must serve bitwise-identically.
  SharedModuleStore store(/*device=*/max_module * 3 / 2, /*host=*/1,
                          disk_config(), /*n_shards=*/1);
  PromptCacheEngine engine(model, workload.tokenizer(), store);
  engine.load_schema(kSchema);
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < std::size(kAsks); ++i) {
      EXPECT_EQ(engine.serve(kAsks[i], opts).tokens, expected[i])
          << "round " << round << " ask " << i;
    }
  }

  const DiskTierStats d = store.disk_stats();
  EXPECT_GT(d.spills, 0u);
  EXPECT_GT(d.faults, 0u);
  check_conservation(d);
  // The RAM cap held the whole time — that is what the disk tier buys.
  EXPECT_LE(store.peak_resident_bytes(), max_module * 3 / 2 + 1);
}

TEST_F(TieredStoreTest, ServerPrefetchPipelineOverlapsAndStaysCorrect) {
  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 256});
  const GenerateOptions opts = ask_options(workload);

  PromptCacheEngine reference(model, workload.tokenizer());
  reference.load_schema(kSchema);
  std::vector<std::vector<TokenId>> expected;
  size_t module_bytes = 0;
  for (const char* ask : kAsks) {
    expected.push_back(reference.serve(ask, opts).tokens);
  }
  reference.store().for_each(
      [&](const std::string&, const EncodedModule& m, ModuleLocation) {
        module_bytes += m.payload_bytes();
      });

  // RAM cap at half the working set; one worker so queued requests give
  // the prefetcher a window to work ahead of admission.
  SharedModuleStore store(/*device=*/module_bytes / 2, /*host=*/1,
                          disk_config(), /*n_shards=*/1);
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.queue_capacity = 32;
  cfg.schemas = {kSchema};
  cfg.prefetch = true;
  cfg.prefetch_depth = 3;
  Server server(model, workload.tokenizer(), store, cfg);
  ASSERT_NE(server.prefetcher(), nullptr);

  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    server.submit(kAsks[i % std::size(kAsks)], opts);
  }
  const std::vector<ServerResponse> responses = server.drain();
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const ServerResponse& r = responses[static_cast<size_t>(i)];
    EXPECT_EQ(r.status, ServeStatus::kOk) << r.detail;
    EXPECT_EQ(r.result.tokens, expected[static_cast<size_t>(i) %
                                        std::size(kAsks)]);
  }

  const StorePrefetcher::Stats ps = server.prefetcher()->stats();
  EXPECT_EQ(ps.prompts, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(ps.bind_errors, 0u);
  EXPECT_GT(ps.keys_issued, 0u);
  check_conservation(store.disk_stats());
  EXPECT_LE(store.peak_resident_bytes(), module_bytes / 2 + 1);
}

// ---------------------------------------------------------------------------
// Satellite: crash-atomic persistence.

TEST_F(TieredStoreTest, PartialSaveIsInvisibleAfterRestart) {
  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 256});
  const std::string path = ::testing::TempDir() + "pc_tiered_save.bin";

  PromptCacheEngine writer(model, workload.tokenizer());
  writer.load_schema(kSchema);
  ASSERT_EQ(writer.save_modules(path), 4u);

  // Simulate the pre-fix failure mode: a crash mid-write used to leave a
  // truncated file at the destination. Such a file must fail loudly...
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  const std::string crashed = path + ".crashed";
  {
    std::ofstream os(crashed, std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() / 2));
  }
  EngineConfig lazy;
  lazy.eager_encode = false;
  PromptCacheEngine reader(model, workload.tokenizer(), lazy);
  reader.load_schema(kSchema);
  EXPECT_THROW(reader.load_modules(crashed), Error);

  // ...and with tmp+rename a crash leaves the truncated bytes in the .tmp,
  // never the destination: a restart sees the intact previous save and
  // ignores the leftover.
  {
    std::ofstream os(path + ".tmp", std::ios::binary);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() / 3));
  }
  EXPECT_EQ(reader.load_modules(path), 4u);
  const GenerateOptions opts = ask_options(workload);
  EXPECT_EQ(reader.serve(kAsks[1], opts).text, "a12 a13");
  EXPECT_EQ(reader.stats().modules_encoded, 0u);

  // A save that cannot complete must leave no destination file at all.
  const std::string bad =
      ::testing::TempDir() + "pc_no_such_dir/deeper/save.bin";
  EXPECT_THROW(writer.save_modules(bad), Error);
  EXPECT_FALSE(std::ifstream(bad).good());

  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove(crashed.c_str());
}

#if PC_FAULTS_ENABLED

// ---------------------------------------------------------------------------
// Satellite: disk-fault chaos.

TEST_F(TieredStoreTest, SpillWriteFaultsDegradeToDestroyEviction) {
  FaultInjector::global().configure("seed=5,diskwrite=1.0");
  SharedModuleStore store(/*device=*/128, /*host=*/1, disk_config(),
                          /*n_shards=*/1);
  store.insert("a", make_real_payload(1, 1.0f));
  store.insert("b", make_real_payload(1, 2.0f));
  store.insert("c", make_real_payload(1, 3.0f));  // spill of "a" fails

  EXPECT_FALSE(store.contains("a"));  // destroyed, not spilled
  const DiskTierStats d = store.disk_stats();
  EXPECT_EQ(d.spills, 0u);
  EXPECT_EQ(d.spill_failures, 1u);
  EXPECT_GE(store.stats().evictions, 1u);  // RAM destroy-eviction counted
  check_conservation(d);
  FaultInjector::global().disable();
}

TEST_F(TieredStoreTest, ReadFaultFallsBackToReencode) {
  FaultInjector::global().configure("seed=5,diskread=1.0");
  SharedModuleStore store(/*device=*/128, /*host=*/1, disk_config(),
                          /*n_shards=*/1);
  std::atomic<int> encodes{0};
  auto encode_a = [&] {
    encodes.fetch_add(1);
    return make_real_payload(1, 1.0f);
  };
  (void)store.ensure("a", encode_a);
  (void)store.ensure("b", [&] { return make_real_payload(1, 2.0f); });
  (void)store.ensure("c", [&] { return make_real_payload(1, 3.0f); });
  ASSERT_EQ(store.spilled_count(), 1u);  // "a" spilled

  // Every disk read fails: ensure()'s fault-in drops the record and the
  // same leader re-encodes under the same flight — the caller still gets
  // a valid, bitwise-identical payload.
  auto ref = store.ensure("a", encode_a);
  ASSERT_TRUE(ref);
  EXPECT_TRUE(payloads_bitwise_equal(*ref, make_real_payload(1, 1.0f)));
  EXPECT_EQ(encodes.load(), 2);

  const DiskTierStats d = store.disk_stats();
  EXPECT_EQ(d.read_failures, 1u);
  EXPECT_EQ(d.faults, 0u);
  check_conservation(d);
  FaultInjector::global().disable();
}

TEST_F(TieredStoreTest, DiskFaultChaosKeepsAvailabilityAtOne) {
  AccuracyWorkload workload(7);
  const Model model = make_induction_model({workload.vocab().size(), 256});
  const GenerateOptions opts = ask_options(workload);

  PromptCacheEngine reference(model, workload.tokenizer());
  reference.load_schema(kSchema);
  std::vector<std::vector<TokenId>> expected;
  size_t module_bytes = 0;
  for (const char* ask : kAsks) {
    expected.push_back(reference.serve(ask, opts).tokens);
  }
  reference.store().for_each(
      [&](const std::string&, const EncodedModule& m, ModuleLocation) {
        module_bytes += m.payload_bytes();
      });

  SharedModuleStore store(/*device=*/module_bytes / 2, /*host=*/1,
                          disk_config(), /*n_shards=*/1);
  // Arm AFTER construction so the spill dir setup is clean, BEFORE serving
  // so spills and fault-ins both draw faults.
  FaultInjector::global().configure("seed=23,diskread=0.3,diskwrite=0.3");

  ServerConfig cfg;
  cfg.n_workers = 2;
  cfg.queue_capacity = 32;
  cfg.schemas = {kSchema};
  cfg.prefetch = true;
  Server server(model, workload.tokenizer(), store, cfg);
  constexpr int kRequests = 30;
  for (int i = 0; i < kRequests; ++i) {
    server.submit(kAsks[i % std::size(kAsks)], opts);
  }
  const std::vector<ServerResponse> responses = server.drain();
  server.stop();  // quiesce the prefetcher before reading counters
  FaultInjector::global().disable();

  // Availability 1.0: every request served (ok, or degraded to full
  // prefill), every one bitwise-identical to the reference.
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const ServerResponse& r = responses[static_cast<size_t>(i)];
    EXPECT_TRUE(is_served(r.status)) << to_string(r.status) << " " << r.detail;
    EXPECT_EQ(r.result.tokens,
              expected[static_cast<size_t>(i) % std::size(kAsks)]);
  }

  // Exact reconciliation under injected faults: failed spills were counted,
  // failed reads dropped their records, and the books still balance.
  check_conservation(store.disk_stats());
}

#endif  // PC_FAULTS_ENABLED

}  // namespace
}  // namespace pc
