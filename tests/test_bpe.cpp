// Tests for the BPE trainer/tokenizer, including end-to-end serving
// through the engine via the TextTokenizer interface.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "model/model.h"
#include "tokenizer/bpe.h"

namespace pc {
namespace {

const char* kCorpus =
    "the cache holds the prompt states and the prompt cache reuses the "
    "states across prompts . the modular cache makes prompt reuse cheap "
    "and the reuse makes the cache useful . prompt prompt prompt cache "
    "cache cache the the the reuse reuse states states";

TEST(Bpe, TrainingIsDeterministicAndBounded) {
  const BpeModel a = BpeModel::train(kCorpus, 50);
  const BpeModel b = BpeModel::train(kCorpus, 50);
  EXPECT_EQ(a.merge_count(), b.merge_count());
  EXPECT_LE(a.merge_count(), 50);
  EXPECT_GT(a.merge_count(), 10);
  EXPECT_EQ(a.encode_pieces("the prompt cache"),
            b.encode_pieces("the prompt cache"));
  // Zero-merge model degenerates to bytes + boundaries.
  const BpeModel none = BpeModel::train(kCorpus, 0);
  EXPECT_EQ(none.merge_count(), 0);
  EXPECT_EQ(none.encode_pieces("ab").size(), 3u);  // boundary + 'a' + 'b'
}

TEST(Bpe, FrequentWordsCollapseToSingleTokens) {
  const BpeModel model = BpeModel::train(kCorpus, 120);
  for (const char* word : {"the", "cache", "prompt"}) {
    const auto pieces = model.encode_pieces(word);
    EXPECT_EQ(pieces.size(), 1u) << word;
    EXPECT_EQ(pieces[0], std::string(BpeModel::kBoundary) + word);
  }
}

TEST(Bpe, MergesReduceTokenCountMonotonically) {
  const std::string text = "the prompt cache reuses the states";
  size_t prev = SIZE_MAX;
  for (int merges : {0, 10, 40, 120}) {
    const BpeModel model = BpeModel::train(kCorpus, merges);
    const size_t n = model.encode_pieces(text).size();
    EXPECT_LE(n, prev) << merges;
    prev = n;
  }
}

TEST(Bpe, RoundTripsArbitraryText) {
  const BpeTokenizer tok(BpeModel::train(kCorpus, 80));
  for (const char* text :
       {"the prompt cache", "completely unseen words zXq!",
        "punctuation , and . marks", "the the the"}) {
    EXPECT_EQ(tok.decode(tok.encode(text)), text) << text;
  }
}

TEST(Bpe, UnseenBytesStillEncodable) {
  const BpeTokenizer tok(BpeModel::train(kCorpus, 40));
  const std::string weird = "caf\xc3\xa9 \x01\x7f";
  EXPECT_EQ(tok.decode(tok.encode(weird)), weird);
}

TEST(Bpe, VocabularyLayout) {
  const BpeTokenizer tok(BpeModel::train(kCorpus, 30));
  // boundary + 256 bytes + merges, no byte-fallback block.
  EXPECT_FALSE(tok.vocab().has_byte_fallback());
  EXPECT_EQ(tok.vocab().piece_count(),
            1 + 256 + tok.model().merge_count());
}

// End-to-end: the engine is tokenizer-agnostic — a schema tokenized by BPE
// serves and matches its own baseline content exactly.
TEST(Bpe, EngineServesWithBpeTokenizer) {
  const BpeTokenizer tok(BpeModel::train(kCorpus, 80));
  const Model model = Model::random(
      ModelConfig::llama_tiny(tok.vocab().size(), 2048), 9);
  PromptCacheEngine engine(model, tok);
  engine.load_schema(R"(
    <schema name="b">
      <module name="doc">the prompt cache reuses the states across prompts</module>
    </schema>)");
  GenerateOptions opts;
  opts.max_new_tokens = 3;
  opts.stop_tokens.clear();
  const ServeResult cached = engine.serve(
      R"(<prompt schema="b"><doc/> the cache</prompt>)", opts);
  const ServeResult baseline = engine.serve_baseline(
      R"(<prompt schema="b"><doc/> the cache</prompt>)", opts);
  // Single module + contiguous suffix: bitwise-equal paths, equal outputs.
  EXPECT_EQ(cached.tokens, baseline.tokens);
  EXPECT_GT(cached.ttft.cached_tokens, 0);
}

}  // namespace
}  // namespace pc
