// Unit tests for prompt parsing and binding (§3.4): import resolution,
// nesting, union exclusivity, argument budgets, uncached position
// assignment, and baseline materialization.
#include <gtest/gtest.h>

#include "pml/prompt.h"
#include "pml/prompt_builder.h"
#include "tokenizer/tokenizer.h"

namespace pc::pml {
namespace {

class PromptTest : public ::testing::Test {
 protected:
  PromptTest()
      : tokenizer_(Vocab::basic_english()), plain_(TemplateStyle::kPlain) {}

  Schema parse_schema(const std::string& pml) {
    return Schema::parse(pml, tokenizer_, plain_);
  }

  PromptBinding bind(const Schema& s, const std::string& prompt) {
    return bind_prompt(s, parse_prompt(prompt), tokenizer_);
  }

  int count(const std::string& text) {
    return static_cast<int>(tokenizer_.encode(text).size());
  }

  std::string decode(const std::vector<TokenId>& ids) {
    return tokenizer_.decode(ids);
  }

  Tokenizer tokenizer_;
  ChatTemplate plain_;
};

TEST_F(PromptTest, ParsePromptStructure) {
  const PromptAst ast = parse_prompt(R"(
    <prompt schema="s">
      <doc x="1">inner text<sub/></doc>
      trailing question
    </prompt>)");
  EXPECT_EQ(ast.schema_name, "s");
  ASSERT_EQ(ast.items.size(), 2u);
  ASSERT_FALSE(ast.items[0].is_text());
  const PromptImport& imp = *ast.items[0].import;
  EXPECT_EQ(imp.module_name, "doc");
  ASSERT_EQ(imp.args.size(), 1u);
  EXPECT_EQ(imp.args[0].first, "x");
  ASSERT_EQ(imp.children.size(), 2u);
  EXPECT_TRUE(imp.children[0].is_text());
  EXPECT_FALSE(imp.children[1].is_text());
  EXPECT_TRUE(ast.items[1].is_text());
}

TEST_F(PromptTest, BindsImportsAndAnonymousModules) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      you are a helper
      <module name="a">one two</module>
      <module name="b">three four five</module>
    </schema>)");
  const PromptBinding binding =
      bind(s, R"(<prompt schema="s"><b/><a/> what now ?</prompt>)");
  // Anonymous first, then imports in prompt order.
  ASSERT_EQ(binding.modules.size(), 3u);
  EXPECT_TRUE(s.module(binding.modules[0]).anonymous);
  EXPECT_EQ(s.module(binding.modules[1]).name, "b");
  EXPECT_EQ(s.module(binding.modules[2]).name, "a");
  EXPECT_EQ(binding.cached_token_count(),
            count("you are a helper") + 2 + 3);
}

TEST_F(PromptTest, UncachedTextStartsAtPrecedingModuleEnd) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      <module name="a">one two three</module>
      <module name="b">four five</module>
    </schema>)");
  const PromptBinding binding = bind(
      s, R"(<prompt schema="s"><a/> so much <b/> the end</prompt>)");
  ASSERT_EQ(binding.texts.size(), 2u);
  // "so much" starts at a's end (3); "the end" after b's end (5).
  EXPECT_EQ(binding.texts[0].start_pos, 3);
  EXPECT_EQ(binding.texts[1].start_pos, 5);
  EXPECT_EQ(binding.next_pos, 5 + count("the end"));
}

TEST_F(PromptTest, SkippedModuleLeavesAGap) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      <module name="a">one two three</module>
      <module name="big">one two three four five six seven</module>
      <module name="c">eight nine</module>
    </schema>)");
  const PromptBinding binding =
      bind(s, R"(<prompt schema="s"><a/><c/> ask</prompt>)");
  // c keeps its schema positions even though big was skipped.
  const ModuleNode& c = s.module(s.find_module("c"));
  EXPECT_EQ(c.start_pos, 10);
  EXPECT_EQ(binding.texts[0].start_pos, c.end_pos);
}

TEST_F(PromptTest, UnionExclusivityEnforced) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      <union>
        <module name="en">one</module>
        <module name="fr">two</module>
      </union>
    </schema>)");
  EXPECT_NO_THROW(bind(s, R"(<prompt schema="s"><en/></prompt>)"));
  EXPECT_THROW(bind(s, R"(<prompt schema="s"><en/><fr/></prompt>)"),
               SchemaError);
}

TEST_F(PromptTest, DuplicateImportRejected) {
  const Schema s = parse_schema(
      R"(<schema name="s"><module name="a">x</module></schema>)");
  EXPECT_THROW(bind(s, R"(<prompt schema="s"><a/><a/></prompt>)"),
               SchemaError);
}

TEST_F(PromptTest, NestingMustMatchSchema) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      <module name="outer">intro <module name="inner">body</module></module>
      <module name="top">t</module>
    </schema>)");
  // inner at top level: rejected.
  EXPECT_THROW(bind(s, R"(<prompt schema="s"><inner/></prompt>)"),
               SchemaError);
  // top inside outer: rejected.
  EXPECT_THROW(bind(s, R"(<prompt schema="s"><outer><top/></outer></prompt>)"),
               SchemaError);
  // Correct nesting binds, and importing outer alone skips inner.
  const PromptBinding with_inner =
      bind(s, R"(<prompt schema="s"><outer><inner/></outer></prompt>)");
  ASSERT_EQ(with_inner.modules.size(), 2u);
  const PromptBinding without_inner =
      bind(s, R"(<prompt schema="s"><outer/></prompt>)");
  ASSERT_EQ(without_inner.modules.size(), 1u);
  EXPECT_EQ(s.module(without_inner.modules[0]).name, "outer");
}

TEST_F(PromptTest, ArgumentsBindToPlaceholders) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      <module name="plan">go for <param name="days" len="3"/> days</module>
    </schema>)");
  const PromptBinding binding =
      bind(s, R"(<prompt schema="s"><plan days="two"/> ok</prompt>)");
  ASSERT_EQ(binding.args.size(), 1u);
  EXPECT_EQ(binding.args[0].start_pos, count("go for"));
  EXPECT_EQ(binding.args[0].tokens.size(), 1u);
  EXPECT_EQ(binding.uncached_token_count(), 1 + count("ok"));
}

TEST_F(PromptTest, ArgumentErrors) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      <module name="plan">go <param name="days" len="2"/></module>
    </schema>)");
  EXPECT_THROW(bind(s, R"(<prompt schema="s"><plan bogus="x"/></prompt>)"),
               SchemaError);  // unknown param
  EXPECT_THROW(
      bind(s, R"(<prompt schema="s"><plan days="one two three"/></prompt>)"),
      SchemaError);  // over budget
}

TEST_F(PromptTest, SchemaNameMismatchAndUnknownModule) {
  const Schema s = parse_schema(
      R"(<schema name="real"><module name="a">x</module></schema>)");
  EXPECT_THROW(bind(s, R"(<prompt schema="other"><a/></prompt>)"),
               SchemaError);
  EXPECT_THROW(bind(s, R"(<prompt schema="real"><ghost/></prompt>)"),
               SchemaError);
}

TEST_F(PromptTest, BaselineMaterializesInLayoutOrderWithArgs) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      system text
      <module name="a">first part</module>
      <module name="plan">go for <param name="days" len="3"/> days</module>
    </schema>)");
  const PromptBinding binding = bind(
      s,
      R"(<prompt schema="s"><plan days="two"/><a/> final question</prompt>)");
  EXPECT_EQ(decode(binding.baseline_tokens),
            "system text first part go for two days final question");
}

TEST_F(PromptTest, BaselineOmitsUnsuppliedParamAndSkippedModules) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      <module name="a">alpha</module>
      <module name="plan">go <param name="days" len="3"/> now</module>
    </schema>)");
  const PromptBinding binding =
      bind(s, R"(<prompt schema="s"><plan/> q</prompt>)");
  EXPECT_EQ(decode(binding.baseline_tokens), "go now q");
}

TEST_F(PromptTest, PromptBuilderProducesBindablePml) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      <module name="doc">text here</module>
      <module name="plan">go <param name="days" len="3"/></module>
    </schema>)");
  PromptBuilder b("s");
  b.import("doc");
  b.import(ImportBuilder("plan").arg("days", "two"));
  b.text("the question");
  const PromptBinding binding = bind(s, b.str());
  EXPECT_EQ(binding.modules.size(), 2u);
  EXPECT_EQ(binding.args.size(), 1u);
  ASSERT_EQ(binding.texts.size(), 1u);
  EXPECT_EQ(decode(binding.texts[0].tokens), "the question");
}

TEST_F(PromptTest, OverlapAndBudgetWarningsAreAdvisory) {
  const Schema s = parse_schema(R"(
    <schema name="w">
      <module name="a">one two</module>
      <module name="b">three four five</module>
      <module name="plan">go <param name="days" len="12"/></module>
    </schema>)");

  // Text between a and b longer than the (zero) gap: overlaps b.
  const PromptBinding overlapping = bind(
      s, R"(<prompt schema="w"><a/> so much more here <b/> end</prompt>)");
  ASSERT_FALSE(overlapping.warnings.empty());
  EXPECT_NE(overlapping.warnings[0].find("overlaps module 'b'"),
            std::string::npos);

  // A tiny argument in a large budget.
  const PromptBinding wasteful =
      bind(s, R"(<prompt schema="w"><plan days="two"/> q</prompt>)");
  ASSERT_EQ(wasteful.warnings.size(), 1u);
  EXPECT_NE(wasteful.warnings[0].find("budgeted positions"),
            std::string::npos);

  // A clean prompt produces none.
  const PromptBinding clean =
      bind(s, R"(<prompt schema="w"><a/><b/> the end</prompt>)");
  EXPECT_TRUE(clean.warnings.empty());
}

TEST_F(PromptTest, AnonymousModulesCannotBeImported) {
  const Schema s = parse_schema(R"(
    <schema name="s">
      preamble words
      <module name="a">x</module>
    </schema>)");
  const std::string anon_name = s.module(s.anonymous_modules[0]).name;
  EXPECT_THROW(
      bind(s, "<prompt schema=\"s\"><" + anon_name + "/></prompt>"),
      SchemaError);
}

}  // namespace
}  // namespace pc::pml
