// Continuous-batching serve path (sys/batch.h + Server batching mode):
//
//   * forward_batch over paged caches is bitwise-identical to forward()
//     over dense caches, chunked or not, solo or batched;
//   * the batching Server produces bitwise-identical tokens to sequential
//     PromptCacheEngine::serve at every batch width (greedy and sampled);
//   * requests sharing modules share paged KV (§3.4): module renditions are
//     held once however many requests attach them, and the peak footprint
//     beats the private-modules baseline; partial module tails are attached
//     copy-on-write;
//   * deadline semantics in batch mode: expiry while queued sheds at
//     dequeue, expiry mid-service cancels to kTimeout;
//   * submit-time shedding counts in-service requests, not just the queue
//     (the regression that admitted doomed requests under full load), and
//     drain() returns when everything behind the blocker was shed;
//   * submit racing stop(): every id that submit() returned is recorded
//     with exactly one status;
//   * chaos (PC_FAULTS): the batch loop under encode/link/evict/stall
//     faults keeps availability 1.0 with bitwise-equal tokens.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/shared_module_store.h"
#include "eval/workload.h"
#include "kv/paged_cache.h"
#include "kv/paged_pool.h"
#include "model/induction.h"
#include "sys/fault.h"
#include "sys/server.h"

namespace pc {
namespace {

constexpr char kSchema[] = R"(
  <schema name="bs">
    <module name="d1">w00 w01 q05 a10 a11 . w02</module>
    <module name="d2">w03 q06 a12 a13 . w04</module>
    <module name="d3">w05 w06 q07 a14 a15 . w07</module>
    <module name="d4">w08 q08 a16 a17 . w09</module>
  </schema>)";

const char* const kPrompts[] = {
    R"(<prompt schema="bs"><d1/><d2/> question: q05</prompt>)",
    R"(<prompt schema="bs"><d1/><d2/> question: q06</prompt>)",
    R"(<prompt schema="bs"><d3/><d4/> question: q07</prompt>)",
    R"(<prompt schema="bs"><d3/><d4/> question: q08</prompt>)",
    R"(<prompt schema="bs"><d1/><d2/><d3/><d4/> question: q07</prompt>)",
    R"(<prompt schema="bs"><d2/><d4/> question: q08</prompt>)",
};
constexpr size_t kNumPrompts = std::size(kPrompts);

GenerateOptions ask_options(const AccuracyWorkload& workload) {
  GenerateOptions opts;
  opts.max_new_tokens = 5;
  opts.stop_tokens = {workload.stop_token()};
  return opts;
}

class BatchServeTest : public ::testing::Test {
 protected:
  BatchServeTest()
      : workload_(7),
        model_(make_induction_model({workload_.vocab().size(), 256})) {
    FaultInjector::global().disable();
  }
  ~BatchServeTest() override { FaultInjector::global().disable(); }

  // Sequential ground truth: a fresh engine serving one request at a time.
  std::vector<std::vector<TokenId>> reference_tokens(
      const std::vector<std::string>& prompts,
      const std::vector<GenerateOptions>& options) {
    PromptCacheEngine reference(model_, workload_.tokenizer());
    reference.load_schema(kSchema);
    std::vector<std::vector<TokenId>> expected;
    for (size_t i = 0; i < prompts.size(); ++i) {
      expected.push_back(reference.serve(prompts[i], options[i]).tokens);
    }
    return expected;
  }

  AccuracyWorkload workload_;
  Model model_;
};

void check_status_invariants(const ServerResponse& r) {
  if (is_served(r.status)) {
    EXPECT_TRUE(r.deadline_met) << "id " << r.id << ": " << r.detail;
  }
  if (r.status == ServeStatus::kTimeout || r.status == ServeStatus::kShed) {
    EXPECT_FALSE(r.deadline_met) << "id " << r.id;
    EXPECT_TRUE(r.result.tokens.empty()) << "id " << r.id;
  }
}

void check_accounting(const ServerStats& s) {
  EXPECT_EQ(s.completed + s.shed + s.timeouts + s.failed, s.submitted);
  EXPECT_LE(s.degraded, s.completed);
}

// ---------------------------------------------------------------------------
// forward_batch: the kernel-level bitwise contract

TEST_F(BatchServeTest, ForwardBatchMatchesForwardBitwise) {
  const auto tokens = workload_.tokenizer().encode(
      "w00 w01 q05 a10 a11 . w02 w03 q06 a12 a13 . w04");
  const int n = static_cast<int>(tokens.size());
  ASSERT_GE(n, 8);
  std::vector<int> pos(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pos[static_cast<size_t>(i)] = i;

  KVCache dense = model_.make_cache();
  const Tensor ref = model_.forward(tokens, pos, dense);
  ASSERT_EQ(ref.dim(0), 1);

  const int n_layers = model_.config().n_layers;
  const int kv_dim = model_.config().kv_dim();
  // Small pages so the sequence spans several.
  PagedKVPool pool(4, model_.kv_bytes_per_token());

  // Whole sequence in one batched call.
  {
    PagedKVCache cache(pool, n_layers, kv_dim);
    Model::BatchSeq seq{tokens, pos, &cache};
    const Tensor out = model_.forward_batch({&seq, 1});
    ASSERT_EQ(out.dim(0), 1);
    ASSERT_EQ(out.dim(1), ref.dim(1));
    EXPECT_EQ(std::memcmp(out.data(), ref.data(),
                          static_cast<size_t>(ref.dim(1)) * sizeof(float)),
              0);
  }

  // Chunked prefill: same cache fed 5 tokens at a time; the last chunk's
  // logits must still match the one-shot dense run bitwise.
  {
    PagedKVCache cache(pool, n_layers, kv_dim);
    Tensor out;
    for (int at = 0; at < n; at += 5) {
      const int len = std::min(5, n - at);
      Model::BatchSeq seq{
          std::span<const TokenId>(tokens.data() + at,
                                   static_cast<size_t>(len)),
          std::span<const int>(pos.data() + at, static_cast<size_t>(len)),
          &cache};
      out = model_.forward_batch({&seq, 1});
    }
    EXPECT_EQ(std::memcmp(out.data(), ref.data(),
                          static_cast<size_t>(ref.dim(1)) * sizeof(float)),
              0);
  }

  // Two sequences of different lengths stepped together: each row matches
  // its solo dense run.
  {
    const int n2 = n / 2;
    KVCache dense2 = model_.make_cache();
    const Tensor ref2 = model_.forward(
        std::span<const TokenId>(tokens.data(), static_cast<size_t>(n2)),
        std::span<const int>(pos.data(), static_cast<size_t>(n2)), dense2);

    PagedKVCache a(pool, n_layers, kv_dim);
    PagedKVCache b(pool, n_layers, kv_dim);
    Model::BatchSeq seqs[2] = {
        {tokens, pos, &a},
        {std::span<const TokenId>(tokens.data(), static_cast<size_t>(n2)),
         std::span<const int>(pos.data(), static_cast<size_t>(n2)), &b}};
    const Tensor out = model_.forward_batch(seqs);
    ASSERT_EQ(out.dim(0), 2);
    const size_t row_bytes = static_cast<size_t>(ref.dim(1)) * sizeof(float);
    EXPECT_EQ(std::memcmp(out.data(), ref.data(), row_bytes), 0);
    EXPECT_EQ(std::memcmp(out.data() + out.dim(1), ref2.data(), row_bytes),
              0);
  }
}

// ---------------------------------------------------------------------------
// Batched serving == sequential serving, bitwise

TEST_F(BatchServeTest, BatchedMatchesSequentialBitwise) {
  constexpr int kRequests = 12;
  std::vector<std::string> prompts;
  std::vector<GenerateOptions> options;
  for (int i = 0; i < kRequests; ++i) {
    prompts.push_back(kPrompts[static_cast<size_t>(i) % kNumPrompts]);
    options.push_back(ask_options(workload_));
  }
  const auto expected = reference_tokens(prompts, options);

  for (int max_batch : {1, 2, 4, 8}) {
    ServerConfig cfg;
    cfg.batching = true;
    cfg.batch.max_batch = max_batch;
    cfg.schemas = {kSchema};
    Server server(model_, workload_.tokenizer(), cfg);
    for (int i = 0; i < kRequests; ++i) {
      server.submit(prompts[static_cast<size_t>(i)],
                    options[static_cast<size_t>(i)]);
    }
    const auto responses = server.drain();

    ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
    for (int i = 0; i < kRequests; ++i) {
      const ServerResponse& r = responses[static_cast<size_t>(i)];
      EXPECT_EQ(r.status, ServeStatus::kOk)
          << "batch " << max_batch << " id " << r.id << ": " << r.detail;
      EXPECT_EQ(r.result.tokens, expected[static_cast<size_t>(i)])
          << "batch " << max_batch << " id " << r.id;
      check_status_invariants(r);
    }

    const ServerStats stats = server.stats();
    EXPECT_TRUE(stats.batching);
    EXPECT_EQ(stats.completed, static_cast<uint64_t>(kRequests));
    EXPECT_GT(stats.batch_iterations, 0u);
    EXPECT_GT(stats.batch_tokens, 0u);
    check_accounting(stats);
  }
}

TEST_F(BatchServeTest, Q8BatchedMatchesSequentialQ8Bitwise) {
  // Quantized module pages: shared renditions stay int8 in the paged pool
  // and decode tails stay fp32. Tokens must be bitwise-identical to a
  // sequential q8 engine, and — the retrieval gate — identical to the fp32
  // sequential reference (induction retrieval survives Q8_0).
  constexpr int kRequests = 12;
  std::vector<std::string> prompts;
  std::vector<GenerateOptions> options;
  for (int i = 0; i < kRequests; ++i) {
    prompts.push_back(kPrompts[static_cast<size_t>(i) % kNumPrompts]);
    options.push_back(ask_options(workload_));
  }
  const auto fp32_expected = reference_tokens(prompts, options);

  EngineConfig q8_cfg;
  q8_cfg.precision = StorePrecision::kQ8;
  PromptCacheEngine sequential(model_, workload_.tokenizer(), q8_cfg);
  sequential.load_schema(kSchema);
  std::vector<std::vector<TokenId>> q8_expected;
  for (int i = 0; i < kRequests; ++i) {
    q8_expected.push_back(
        sequential.serve(prompts[static_cast<size_t>(i)],
                         options[static_cast<size_t>(i)]).tokens);
  }

  for (int max_batch : {1, 4}) {
    ServerConfig cfg;
    cfg.batching = true;
    cfg.batch.max_batch = max_batch;
    cfg.engine.precision = StorePrecision::kQ8;
    cfg.schemas = {kSchema};
    Server server(model_, workload_.tokenizer(), cfg);
    for (int i = 0; i < kRequests; ++i) {
      server.submit(prompts[static_cast<size_t>(i)],
                    options[static_cast<size_t>(i)]);
    }
    const auto responses = server.drain();
    ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
    for (int i = 0; i < kRequests; ++i) {
      const ServerResponse& r = responses[static_cast<size_t>(i)];
      EXPECT_EQ(r.status, ServeStatus::kOk)
          << "batch " << max_batch << " id " << r.id << ": " << r.detail;
      EXPECT_EQ(r.result.tokens, q8_expected[static_cast<size_t>(i)])
          << "batch " << max_batch << " id " << r.id;
      EXPECT_EQ(r.result.tokens, fp32_expected[static_cast<size_t>(i)])
          << "q8 retrieval must stay exact; batch " << max_batch;
    }
  }
}

TEST_F(BatchServeTest, Q4BatchedMatchesSequentialQ4Bitwise) {
  // Sub-byte module pages: shared renditions stay packed Q4_0 nibbles in
  // the paged pool and decode tails stay fp32. Tokens must be bitwise-
  // identical to a sequential q4 engine, and — the retrieval gate —
  // identical to the fp32 sequential reference (induction retrieval
  // survives Q4_0).
  constexpr int kRequests = 12;
  std::vector<std::string> prompts;
  std::vector<GenerateOptions> options;
  for (int i = 0; i < kRequests; ++i) {
    prompts.push_back(kPrompts[static_cast<size_t>(i) % kNumPrompts]);
    options.push_back(ask_options(workload_));
  }
  const auto fp32_expected = reference_tokens(prompts, options);

  EngineConfig q4_cfg;
  q4_cfg.precision = StorePrecision::kQ4;
  PromptCacheEngine sequential(model_, workload_.tokenizer(), q4_cfg);
  sequential.load_schema(kSchema);
  std::vector<std::vector<TokenId>> q4_expected;
  for (int i = 0; i < kRequests; ++i) {
    q4_expected.push_back(
        sequential.serve(prompts[static_cast<size_t>(i)],
                         options[static_cast<size_t>(i)]).tokens);
  }

  for (int max_batch : {1, 4}) {
    ServerConfig cfg;
    cfg.batching = true;
    cfg.batch.max_batch = max_batch;
    cfg.engine.precision = StorePrecision::kQ4;
    cfg.schemas = {kSchema};
    Server server(model_, workload_.tokenizer(), cfg);
    for (int i = 0; i < kRequests; ++i) {
      server.submit(prompts[static_cast<size_t>(i)],
                    options[static_cast<size_t>(i)]);
    }
    const auto responses = server.drain();
    ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
    for (int i = 0; i < kRequests; ++i) {
      const ServerResponse& r = responses[static_cast<size_t>(i)];
      EXPECT_EQ(r.status, ServeStatus::kOk)
          << "batch " << max_batch << " id " << r.id << ": " << r.detail;
      EXPECT_EQ(r.result.tokens, q4_expected[static_cast<size_t>(i)])
          << "batch " << max_batch << " id " << r.id;
      EXPECT_EQ(r.result.tokens, fp32_expected[static_cast<size_t>(i)])
          << "q4 retrieval must stay exact; batch " << max_batch;
    }
  }
}

TEST_F(BatchServeTest, BatchedSamplingMatchesSequentialBitwise) {
  // Seeded stochastic decoding: the per-request Rng must advance exactly as
  // in generate_impl, whatever else is in the batch.
  constexpr int kRequests = 8;
  std::vector<std::string> prompts;
  std::vector<GenerateOptions> options;
  for (int i = 0; i < kRequests; ++i) {
    prompts.push_back(kPrompts[static_cast<size_t>(i) % kNumPrompts]);
    GenerateOptions o = ask_options(workload_);
    o.temperature = 0.8f;
    o.top_k = 3;
    o.seed = 1000 + static_cast<uint64_t>(i);
    options.push_back(o);
  }
  const auto expected = reference_tokens(prompts, options);

  ServerConfig cfg;
  cfg.batching = true;
  cfg.batch.max_batch = 4;
  cfg.schemas = {kSchema};
  Server server(model_, workload_.tokenizer(), cfg);
  for (int i = 0; i < kRequests; ++i) {
    server.submit(prompts[static_cast<size_t>(i)],
                  options[static_cast<size_t>(i)]);
  }
  const auto responses = server.drain();

  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(responses[static_cast<size_t>(i)].status, ServeStatus::kOk);
    EXPECT_EQ(responses[static_cast<size_t>(i)].result.tokens,
              expected[static_cast<size_t>(i)])
        << "id " << i;
  }
}

TEST_F(BatchServeTest, BatchedSharedStoreMatchesSequential) {
  constexpr int kRequests = 8;
  std::vector<std::string> prompts;
  std::vector<GenerateOptions> options;
  for (int i = 0; i < kRequests; ++i) {
    prompts.push_back(kPrompts[static_cast<size_t>(i) % kNumPrompts]);
    options.push_back(ask_options(workload_));
  }
  const auto expected = reference_tokens(prompts, options);

  SharedModuleStore store(/*device=*/0, /*host=*/0);
  ServerConfig cfg;
  cfg.batching = true;
  cfg.batch.max_batch = 4;
  cfg.schemas = {kSchema};
  Server server(model_, workload_.tokenizer(), store, cfg);
  for (int i = 0; i < kRequests; ++i) {
    server.submit(prompts[static_cast<size_t>(i)],
                  options[static_cast<size_t>(i)]);
  }
  const auto responses = server.drain();

  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(responses[static_cast<size_t>(i)].result.tokens,
              expected[static_cast<size_t>(i)])
        << "id " << i;
  }
  const ServerStats stats = server.stats();
  EXPECT_TRUE(stats.shared_store);
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kRequests));
  check_accounting(stats);
}

// ---------------------------------------------------------------------------
// §3.4 paged sharing: footprint accounting

// 20-token modules (page_tokens = 16): each rendition spans one full page
// (shared by reference) plus a 4-token tail (attached copy-on-write).
std::string footprint_schema() {
  std::string s = "<schema name=\"fp\">";
  for (int i = 0; i < 8; ++i) {
    s += "<module name=\"m" + std::to_string(i) + "\">";
    s += "w00 w01 w02 w03 w04 w05 w06 w07 ";
    s += "q1" + std::to_string(i) + " ";
    s += "a" + std::to_string(20 + 2 * i) + " a" + std::to_string(21 + 2 * i);
    s += " . w08 w09 w10 w11 w12 w13 w14 w15";
    s += "</module>";
  }
  s += "</schema>";
  return s;
}

TEST_F(BatchServeTest, SharedModulesReduceKvFootprint) {
  const std::string schema = footprint_schema();
  constexpr int kRequests = 8;

  auto run = [&](bool shared_traffic) {
    ServerConfig cfg;
    cfg.batching = true;
    cfg.batch.max_batch = kRequests;
    // COW-tail accounting is fp32-specific: q8 module pages are immutable,
    // so partial tails are copied rather than attached copy-on-write. Pin
    // fp32 here; the q8 paged path is covered by Q8BatchedMatchesSequential.
    cfg.engine.precision = StorePrecision::kFp32;
    cfg.schemas = {schema};
    Server server(model_, workload_.tokenizer(), cfg);
    for (int i = 0; i < kRequests; ++i) {
      // Shared traffic: every request imports the same module. Private
      // traffic: each request imports its own.
      const int m = shared_traffic ? 0 : i;
      const std::string prompt = "<prompt schema=\"fp\"><m" +
                                 std::to_string(m) +
                                 "/> question: q1" + std::to_string(m) +
                                 "</prompt>";
      server.submit(prompt, ask_options(workload_));
    }
    const auto responses = server.drain();
    for (const auto& r : responses) {
      EXPECT_EQ(r.status, ServeStatus::kOk) << r.detail;
      EXPECT_FALSE(r.result.tokens.empty());
    }
    return server.stats();
  };

  const ServerStats shared = run(/*shared_traffic=*/true);
  const ServerStats priv = run(/*shared_traffic=*/false);

  // Module renditions are held once per distinct module, not per request.
  EXPECT_GT(shared.kv_module_bytes, 0u);
  EXPECT_EQ(priv.kv_module_bytes, 8 * shared.kv_module_bytes);

  // Sharing shows up as a strictly smaller peak resident KV footprint for
  // the same request count — the paper's batch-memory claim, measured.
  EXPECT_GT(shared.kv_peak_bytes, 0u);
  EXPECT_LT(shared.kv_peak_bytes, priv.kv_peak_bytes);

  // Every request attaches its module's 4-token tail copy-on-write.
  EXPECT_GE(shared.kv_cow_copies, static_cast<uint64_t>(kRequests));
  EXPECT_GE(priv.kv_cow_copies, static_cast<uint64_t>(kRequests));
  check_accounting(shared);
  check_accounting(priv);
}

// ---------------------------------------------------------------------------
// Deadlines in batch mode

TEST_F(BatchServeTest, BatchDeadlineExpiryWhileQueuedSheds) {
  ServerConfig cfg;
  cfg.batching = true;
  cfg.batch.max_batch = 1;  // the second request must wait its turn
  cfg.schemas = {kSchema};
  Server server(model_, workload_.tokenizer(), cfg);

  GenerateOptions slow = ask_options(workload_);
  slow.max_new_tokens = 64;
  slow.stop_tokens.clear();
  server.submit(kPrompts[0], slow);
  server.submit(kPrompts[1], ask_options(workload_), /*deadline_ms=*/0.05);
  const auto responses = server.drain();

  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk) << responses[0].detail;
  EXPECT_EQ(responses[1].status, ServeStatus::kShed) << responses[1].detail;
  EXPECT_NE(responses[1].detail.find("shed at dequeue"), std::string::npos)
      << responses[1].detail;
  check_status_invariants(responses[0]);
  check_status_invariants(responses[1]);
  check_accounting(server.stats());
}

TEST_F(BatchServeTest, BatchDeadlineExpiryMidServiceTimesOut) {
  ServerConfig cfg;
  cfg.batching = true;
  cfg.batch.max_batch = 2;
  cfg.schemas = {kSchema};
  // A 50 ms simulated host-link transfer guarantees the 10 ms deadline
  // expires after admission but before the first prefill chunk — the
  // machine-speed-independent way to hit the mid-service cancel path.
  cfg.link.latency_s = 0.05;
  Server server(model_, workload_.tokenizer(), cfg);

  server.submit(kPrompts[0], ask_options(workload_), /*deadline_ms=*/10);
  const auto responses = server.drain();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kTimeout)
      << responses[0].detail;
  check_status_invariants(responses[0]);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.deadline_misses, 1u);
  check_accounting(stats);
}

// ---------------------------------------------------------------------------
// Submit-time shedding counts in-service requests (the bugfix)

TEST_F(BatchServeTest, SubmitShedCountsInServiceRequests) {
  // Worker mode, one worker, 100 ms simulated link stall per request.
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  cfg.link.latency_s = 0.1;
  Server server(model_, workload_.tokenizer(), cfg);
  const GenerateOptions opts = ask_options(workload_);

  // Prime the service-time EWMA (~100 ms).
  server.submit(kPrompts[0], opts);
  (void)server.drain();

  // Occupy the worker, give it time to dequeue — the queue is now EMPTY
  // but one request is in service. The old estimate looked only at
  // queue_.size(), predicted zero wait, and admitted the doomed requests.
  server.submit(kPrompts[1], opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::vector<uint64_t> doomed;
  for (int i = 0; i < 8; ++i) {
    doomed.push_back(
        server.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts], opts,
                      /*deadline_ms=*/5));
  }
  // drain() must return even though everything behind the blocker shed.
  const auto responses = server.drain();

  ASSERT_EQ(responses.size(), 9u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk) << responses[0].detail;
  for (size_t i = 1; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].status, ServeStatus::kShed)
        << "id " << responses[i].id << ": " << responses[i].detail;
    // Shed at submit, not at dequeue: never handed to a worker.
    EXPECT_EQ(responses[i].worker, -1) << responses[i].detail;
    EXPECT_NE(responses[i].detail.find("shed at submit"), std::string::npos)
        << responses[i].detail;
    check_status_invariants(responses[i]);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 8u);
  EXPECT_EQ(stats.completed, 2u);  // including the EWMA-priming request
  check_accounting(stats);
}

// ---------------------------------------------------------------------------
// Shutdown race

TEST_F(BatchServeTest, SubmitRacingStopRecordsEverySubmittedId) {
  ServerConfig cfg;
  cfg.batching = true;
  cfg.batch.max_batch = 4;
  cfg.queue_capacity = 4;
  cfg.schemas = {kSchema};
  Server server(model_, workload_.tokenizer(), cfg);
  const GenerateOptions opts = ask_options(workload_);

  std::atomic<uint64_t> accepted{0};
  std::thread submitter([&] {
    for (int i = 0; i < 200; ++i) {
      try {
        server.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts], opts);
        accepted.fetch_add(1);
      } catch (const Error&) {
        return;  // stopped while (or before) blocking on the full queue
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.stop();
  submitter.join();

  // Every accepted request was recorded with exactly one status.
  const auto responses = server.drain();
  EXPECT_EQ(responses.size(), accepted.load());
  for (const auto& r : responses) {
    EXPECT_TRUE(is_served(r.status)) << r.detail;
    EXPECT_FALSE(r.result.tokens.empty());
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, accepted.load());
  check_accounting(stats);
}

// ---------------------------------------------------------------------------
// Chaos: availability 1.0 in batch mode

#if PC_FAULTS_ENABLED

TEST_F(BatchServeTest, BatchChaosKeepsFullAvailability) {
  constexpr int kRequests = 24;
  std::vector<std::string> prompts;
  std::vector<GenerateOptions> options;
  for (int i = 0; i < kRequests; ++i) {
    prompts.push_back(kPrompts[static_cast<size_t>(i) % kNumPrompts]);
    options.push_back(ask_options(workload_));
  }
  const auto expected = reference_tokens(prompts, options);

  const char* env = std::getenv("PC_FAULTS");
  const std::string spec =
      (env && *env)
          ? std::string(env)
          : "seed=1234,encode=0.3,link=0.25,evict=0.3,stall=0.15:5";
  FaultInjector::global().configure(spec);

  SharedModuleStore store(/*device=*/0, /*host=*/0);
  ServerConfig cfg;
  cfg.batching = true;
  cfg.batch.max_batch = 4;
  cfg.schemas = {kSchema};
  cfg.engine.eager_encode = false;  // encode at serve time, under faults
  cfg.link.latency_s = 0.002;       // nonzero so link faults are polled
  {
    Server server(model_, workload_.tokenizer(), store, cfg);
    for (int i = 0; i < kRequests; ++i) {
      server.submit(prompts[static_cast<size_t>(i)],
                    options[static_cast<size_t>(i)]);
    }
    const auto responses = server.drain();
    FaultInjector::global().disable();

    ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
    for (int i = 0; i < kRequests; ++i) {
      const ServerResponse& r = responses[static_cast<size_t>(i)];
      EXPECT_TRUE(is_served(r.status))
          << "id " << r.id << " status " << to_string(r.status) << ": "
          << r.detail;
      // Faults may cost retries or degrade the path, never the tokens.
      EXPECT_EQ(r.result.tokens, expected[static_cast<size_t>(i)])
          << "id " << r.id << " status " << to_string(r.status);
      check_status_invariants(r);
    }

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(stats.completed, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_EQ(stats.timeouts, 0u);
    EXPECT_EQ(stats.failed, 0u);
    check_accounting(stats);
  }
}

#endif  // PC_FAULTS_ENABLED

}  // namespace
}  // namespace pc
