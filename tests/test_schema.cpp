// Unit tests for PML schema parsing and position-ID layout (§3.2/§3.3):
// module extents, anonymous text, unions sharing start positions,
// parameters, nesting, role-tag template expansion, and validation errors.
#include <gtest/gtest.h>

#include "pml/schema.h"
#include "tokenizer/tokenizer.h"

namespace pc::pml {
namespace {

class SchemaTest : public ::testing::Test {
 protected:
  SchemaTest()
      : tokenizer_(Vocab::basic_english()),
        plain_(TemplateStyle::kPlain) {}

  Schema parse(const std::string& pml) {
    return Schema::parse(pml, tokenizer_, plain_);
  }

  int count(const std::string& text) {
    return static_cast<int>(tokenizer_.encode(text).size());
  }

  Tokenizer tokenizer_;
  ChatTemplate plain_;
};

TEST_F(SchemaTest, ModulesGetSequentialExtents) {
  const Schema s = parse(R"(
    <schema name="s">
      <module name="a">one two three</module>
      <module name="b">four five</module>
    </schema>)");
  EXPECT_EQ(s.name, "s");
  const ModuleNode& a = s.module(s.find_module("a"));
  const ModuleNode& b = s.module(s.find_module("b"));
  EXPECT_EQ(a.start_pos, 0);
  EXPECT_EQ(a.end_pos, 3);
  EXPECT_EQ(b.start_pos, 3);
  EXPECT_EQ(b.end_pos, 5);
  EXPECT_EQ(s.total_positions, 5);
}

TEST_F(SchemaTest, AnonymousTextBecomesAlwaysIncludedModule) {
  const Schema s = parse(R"(
    <schema name="s">
      you are a helper
      <module name="doc">the document</module>
      answer well
    </schema>)");
  ASSERT_EQ(s.anonymous_modules.size(), 2u);
  const ModuleNode& pre = s.module(s.anonymous_modules[0]);
  EXPECT_TRUE(pre.anonymous);
  EXPECT_EQ(pre.start_pos, 0);
  EXPECT_EQ(pre.end_pos, count("you are a helper"));
  // Anonymous modules cannot be found by a user-facing name.
  EXPECT_EQ(s.find_module("doc"), s.anonymous_modules[0] + 1);
}

TEST_F(SchemaTest, UnionMembersShareStartAndTakeMaxExtent) {
  const Schema s = parse(R"(
    <schema name="s">
      <module name="head">start here</module>
      <union>
        <module name="short">one</module>
        <module name="long">one two three four</module>
      </union>
      <module name="tail">end</module>
    </schema>)");
  const ModuleNode& sh = s.module(s.find_module("short"));
  const ModuleNode& lg = s.module(s.find_module("long"));
  const ModuleNode& tail = s.module(s.find_module("tail"));
  EXPECT_EQ(sh.start_pos, lg.start_pos);
  EXPECT_EQ(sh.start_pos, 2);
  EXPECT_EQ(lg.end_pos, 6);
  EXPECT_EQ(sh.end_pos, 3);
  // The union occupies the largest member's extent.
  ASSERT_EQ(s.unions.size(), 1u);
  EXPECT_EQ(s.unions[0].start_pos, 2);
  EXPECT_EQ(s.unions[0].end_pos, 6);
  EXPECT_EQ(tail.start_pos, 6);
  EXPECT_EQ(sh.union_id, 0);
  EXPECT_EQ(lg.union_id, 0);
  EXPECT_EQ(tail.union_id, -1);
}

TEST_F(SchemaTest, ParamsOccupyMaxLenPositions) {
  const Schema s = parse(R"(
    <schema name="s">
      <module name="m">plan a trip of <param name="duration" len="4"/> days</module>
    </schema>)");
  const ModuleNode& m = s.module(s.find_module("m"));
  ASSERT_EQ(m.params.size(), 1u);
  const int prefix = count("plan a trip of");
  EXPECT_EQ(m.params[0].start_pos, prefix);
  EXPECT_EQ(m.params[0].max_len, 4);
  EXPECT_EQ(m.end_pos, prefix + 4 + count("days"));

  // Own runs include an <unk> placeholder run.
  const auto runs = s.module_own_runs(s.find_module("m"));
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_TRUE(runs[1].is_param);
  EXPECT_EQ(runs[1].tokens.size(), 4u);
  for (TokenId t : runs[1].tokens) EXPECT_EQ(t, Vocab::kUnk);
}

TEST_F(SchemaTest, NestedModulesAreChildrenWithOwnExtents) {
  const Schema s = parse(R"(
    <schema name="s">
      <module name="outer">
        intro text
        <module name="inner">nested body</module>
        outro
      </module>
    </schema>)");
  const int outer_i = s.find_module("outer");
  const int inner_i = s.find_module("inner");
  const ModuleNode& outer = s.module(outer_i);
  const ModuleNode& inner = s.module(inner_i);
  EXPECT_EQ(inner.parent, outer_i);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0], inner_i);
  // Inner sits between outer's own pieces.
  EXPECT_EQ(inner.start_pos, count("intro text"));
  EXPECT_EQ(outer.end_pos, inner.end_pos + count("outro"));
  // Outer's own runs skip the nested content.
  int own = 0;
  for (const auto& run : s.module_own_runs(outer_i)) {
    EXPECT_FALSE(run.is_param);
    own += static_cast<int>(run.tokens.size());
  }
  EXPECT_EQ(own, count("intro text") + count("outro"));
}

TEST_F(SchemaTest, RoleTagsExpandThroughChatTemplate) {
  const Schema plain = parse(R"(
    <schema name="s"><system>be helpful</system></schema>)");
  // kPlain renders "system : " prefix + body (the "\n" suffix trims away);
  // each top-level text run becomes its own anonymous module.
  ASSERT_EQ(plain.anonymous_modules.size(), 2u);
  std::string joined;
  for (int mi : plain.anonymous_modules) {
    for (const auto& piece : plain.module(mi).pieces) {
      joined += piece.text + " ";
    }
  }
  EXPECT_NE(joined.find("system"), std::string::npos);
  EXPECT_NE(joined.find("be helpful"), std::string::npos);

  const ChatTemplate llama(TemplateStyle::kLlama2);
  const Schema wrapped = Schema::parse(
      R"(<schema name="s"><user><module name="doc">text</module></user></schema>)",
      tokenizer_, llama);
  // The [INST] prefix and [/INST] suffix become anonymous modules around doc.
  EXPECT_EQ(wrapped.anonymous_modules.size(), 2u);
  EXPECT_LT(wrapped.module(wrapped.anonymous_modules[0]).start_pos,
            wrapped.module(wrapped.find_module("doc")).start_pos);
}

TEST_F(SchemaTest, ModuleExtentsNeverOverlapOutsideUnions) {
  const Schema s = parse(R"(
    <schema name="s">
      lead
      <module name="a">aa aa</module>
      <union><module name="u1">x</module><module name="u2">y z</module></union>
      <module name="b">bb</module>
    </schema>)");
  // Collect top-level extents; non-union siblings must be disjoint.
  const ModuleNode& a = s.module(s.find_module("a"));
  const ModuleNode& b = s.module(s.find_module("b"));
  const ModuleNode& pre = s.module(s.anonymous_modules[0]);
  EXPECT_LE(pre.end_pos, a.start_pos);
  EXPECT_LE(s.unions[0].end_pos, b.start_pos);
  EXPECT_LE(a.end_pos, s.unions[0].start_pos);
}

TEST_F(SchemaTest, ValidationErrors) {
  EXPECT_THROW(parse(R"(<prompt schema="x"/>)"), ParseError);  // wrong root
  EXPECT_THROW(parse(R"(<schema name="s">
      <module name="a">x</module><module name="a">y</module>
    </schema>)"),
               ParseError);  // duplicate name
  EXPECT_THROW(parse(R"(<schema name="s"><param name="p" len="3"/></schema>)"),
               ParseError);  // top-level param
  EXPECT_THROW(
      parse(R"(<schema name="s"><module name="m"><param name="p" len="0"/></module></schema>)"),
      ParseError);  // non-positive len
  EXPECT_THROW(
      parse(R"(<schema name="s"><module name="m"><param name="p" len="x"/></module></schema>)"),
      ParseError);  // non-integer len
  EXPECT_THROW(parse(R"(<schema name="s"><union>text</union></schema>)"),
               ParseError);  // text in union
  EXPECT_THROW(parse(R"(<schema name="s"><union></union></schema>)"),
               ParseError);  // empty union
  EXPECT_THROW(parse(R"(<schema name="s"><bogus/></schema>)"), ParseError);
  EXPECT_THROW(parse(R"(<schema name="s"><module name="__x">t</module></schema>)"),
               ParseError);  // reserved prefix
}

TEST_F(SchemaTest, DuplicateParamRejected) {
  EXPECT_THROW(parse(R"(<schema name="s"><module name="m">
      <param name="p" len="2"/><param name="p" len="3"/>
    </module></schema>)"),
               ParseError);
}

TEST_F(SchemaTest, UnionInsideModule) {
  const Schema s = parse(R"(
    <schema name="s">
      <module name="outer">
        pick one
        <union>
          <module name="m1">first choice</module>
          <module name="m2">second</module>
        </union>
      </module>
    </schema>)");
  const int outer_i = s.find_module("outer");
  const ModuleNode& m1 = s.module(s.find_module("m1"));
  const ModuleNode& m2 = s.module(s.find_module("m2"));
  EXPECT_EQ(m1.parent, outer_i);
  EXPECT_EQ(m2.parent, outer_i);
  EXPECT_EQ(m1.union_id, m2.union_id);
  EXPECT_EQ(m1.start_pos, m2.start_pos);
  EXPECT_EQ(s.module(outer_i).end_pos,
            std::max(m1.end_pos, m2.end_pos));
}

}  // namespace
}  // namespace pc::pml
