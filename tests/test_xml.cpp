// Unit tests for the minimal XML parser underlying PML.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "pml/xml.h"

namespace pc::pml {
namespace {

TEST(Xml, ParsesElementWithTextAndAttrs) {
  const XmlNode n = parse_xml(R"(<module name="doc" x='1'>hello world</module>)");
  EXPECT_EQ(n.tag, "module");
  ASSERT_EQ(n.attrs.size(), 2u);
  EXPECT_EQ(n.required_attr("name"), "doc");
  EXPECT_EQ(*n.attr("x"), "1");
  EXPECT_EQ(n.attr("missing"), nullptr);
  EXPECT_EQ(n.direct_text(), "hello world");
}

TEST(Xml, ParsesNestedAndSelfClosing) {
  const XmlNode n = parse_xml(R"(<a><b/><c k="v">t</c>tail</a>)");
  ASSERT_EQ(n.children.size(), 3u);
  EXPECT_EQ(n.children[0].tag, "b");
  EXPECT_TRUE(n.children[0].children.empty());
  EXPECT_EQ(n.children[1].tag, "c");
  EXPECT_TRUE(n.children[2].is_text());
  EXPECT_EQ(n.children[2].text, "tail");
}

TEST(Xml, HandlesCommentsAndEntities) {
  const XmlNode n =
      parse_xml("<a><!-- note --><b/>x &lt;tag&gt; &amp; &quot;q&apos;</a>");
  ASSERT_EQ(n.children.size(), 2u);
  EXPECT_EQ(n.children[1].text, "x <tag> & \"q'");
}

TEST(Xml, TracksLineNumbers) {
  const XmlNode n = parse_xml("<a>\n  <b/>\n  <c/>\n</a>");
  EXPECT_EQ(n.line, 1);
  EXPECT_EQ(n.children[0].line, 2);
  EXPECT_EQ(n.children[1].line, 3);
}

TEST(Xml, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_xml("<a><b></a>"), ParseError);      // mismatched close
  EXPECT_THROW(parse_xml("<a>"), ParseError);             // unterminated
  EXPECT_THROW(parse_xml("<a/><b/>"), ParseError);        // two roots
  EXPECT_THROW(parse_xml("<a x=1/>"), ParseError);        // unquoted attr
  EXPECT_THROW(parse_xml("<a x=\"1\" x=\"2\"/>"), ParseError);  // dup attr
  EXPECT_THROW(parse_xml("<a>&bogus;</a>"), ParseError);  // unknown entity
  EXPECT_THROW(parse_xml("<a><!-- nope</a>"), ParseError);  // open comment
  EXPECT_THROW(parse_xml("text only"), ParseError);
}

TEST(Xml, RequiredAttrThrowsWithTagName) {
  const XmlNode n = parse_xml("<module/>");
  try {
    n.required_attr("name");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("module"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("name"), std::string::npos);
  }
}

TEST(Xml, EscapeHelpersRoundTripThroughParser) {
  const std::string nasty = "a < b & c > d \"quoted\"";
  const XmlNode n =
      parse_xml("<t v=\"" + escape_attr(nasty) + "\">" + escape_text(nasty) +
                "</t>");
  EXPECT_EQ(*n.attr("v"), nasty);
  EXPECT_EQ(n.direct_text(), nasty);
}

TEST(Xml, AttributeValuesMayContainEntities) {
  const XmlNode n = parse_xml(R"(<t v="a&amp;b"/>)");
  EXPECT_EQ(*n.attr("v"), "a&b");
}

// Robustness fuzz: random byte mutations of a valid document must either
// parse or throw pc::ParseError — never crash, hang, or corrupt memory.
TEST(XmlFuzz, MutatedDocumentsFailCleanly) {
  const std::string base = R"(
    <schema name="s">
      text &amp; more
      <module name="doc">body <param name="p" len="3"/> tail</module>
      <union><module name="a">x</module><module name="b">y</module></union>
    </schema>)";
  pc::Rng rng(2024);
  int parsed = 0;
  int rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string doc = base;
    const int mutations = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.next_below(doc.size());
      switch (rng.next_below(3)) {
        case 0:
          doc[pos] = static_cast<char>(rng.next_below(256));
          break;
        case 1:
          doc.erase(pos, 1 + rng.next_below(5));
          break;
        default:
          doc.insert(pos, std::string(1 + rng.next_below(3),
                                      static_cast<char>(
                                          '!' + rng.next_below(90))));
      }
      if (doc.empty()) doc = "<a/>";
    }
    try {
      (void)parse_xml(doc);
      ++parsed;
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 500);
  EXPECT_GT(rejected, 100);  // most mutations should be invalid
}

TEST(Xml, NamesAllowDashUnderscoreDot) {
  const XmlNode n = parse_xml(R"(<trip-plan doc.v2="x" my_attr="y"/>)");
  EXPECT_EQ(n.tag, "trip-plan");
  EXPECT_TRUE(n.attr("doc.v2") != nullptr);
  EXPECT_TRUE(n.attr("my_attr") != nullptr);
}

}  // namespace
}  // namespace pc::pml
