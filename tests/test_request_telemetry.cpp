// Request-centric telemetry (obs/request_timeline.h, obs/sampler.h,
// Server::requests()/slo_snapshot()):
//
//   * completeness: exactly one timeline per submitted id, each with a
//     terminal outcome, on both serving paths (worker pool + batching);
//   * the TTFT identity: ttft == queue + transfer + retrieve + prefill for
//     kOk serves;
//   * chaos reconciliation: under seeded encode/link/evict/stall faults
//     the per-outcome timeline counts equal the pc_server_* counters
//     exactly — not approximately;
//   * cache-efficacy attribution: a warm re-serve records zero module
//     misses and nonzero cached tokens / reused modules;
//   * TTFT model drift: with a hardware profile configured, cached kOk
//     serves carry a prediction and feed pc_ttft_model_drift;
//   * the PC_REQLOG JSONL sink and Server::write_request_log round-trip
//     through the JSON reader;
//   * SloTracker window math and MetricsSampler series (via their
//     deterministic seams record_at / sample_once);
//   * fault injections land as instant trace markers and submits emit flow
//     arcs that terminate inside the serving span.
//
// Under -DPC_OBS=OFF a reduced arm checks the stubs stay inert while
// serving still works.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "eval/workload.h"
#include "model/induction.h"
#include "obs/export.h"
#include "obs/json_reader.h"
#include "obs/metrics.h"
#include "obs/request_timeline.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sys/device_model.h"
#include "sys/fault.h"
#include "sys/server.h"

namespace pc {
namespace {

constexpr char kSchema[] = R"(
  <schema name="t">
    <module name="d1">w00 w01 q05 a10 a11 . w02</module>
    <module name="d2">w03 q06 a12 a13 . w04</module>
    <module name="d3">w05 w06 q07 a14 a15 . w07</module>
  </schema>)";

const char* const kPrompts[] = {
    R"(<prompt schema="t"><d1/><d2/> question: q05</prompt>)",
    R"(<prompt schema="t"><d1/><d2/> question: q06</prompt>)",
    R"(<prompt schema="t"><d2/><d3/> question: q07</prompt>)",
};
constexpr size_t kNumPrompts = std::size(kPrompts);

// Deterministic regardless of ambient PC_FAULTS; tests that want faults
// configure their own (the test_faults convention).
class RequestTelemetryTest : public ::testing::Test {
 protected:
  RequestTelemetryTest()
      : workload_(7),
        model_(make_induction_model({workload_.vocab().size(), 256})) {
    FaultInjector::global().disable();
#if PC_OBS_ENABLED
    obs::set_request_telemetry(true);
#endif
  }
  ~RequestTelemetryTest() override { FaultInjector::global().disable(); }

  GenerateOptions ask_options() const {
    GenerateOptions opts;
    opts.max_new_tokens = 5;
    opts.stop_tokens = {workload_.stop_token()};
    return opts;
  }

  AccuracyWorkload workload_;
  Model model_;
};

#if PC_OBS_ENABLED

void check_timeline_invariants(const obs::RequestTimeline& t) {
  EXPECT_NE(t.outcome, obs::RequestOutcome::kPending) << "id " << t.id;
  EXPECT_GT(t.submit_ns, 0u) << "id " << t.id;
  EXPECT_GE(t.done_ns, t.submit_ns) << "id " << t.id;
  if (t.lane >= 0) {
    EXPECT_GE(t.admit_ns, t.submit_ns) << "id " << t.id;
  }
  if (t.outcome == obs::RequestOutcome::kOk) {
    EXPECT_GE(t.first_token_ns, t.submit_ns) << "id " << t.id;
    // The documented TTFT identity (encode is charged separately).
    EXPECT_NEAR(t.ttft_ms,
                t.queue_ms + t.transfer_ms + t.retrieve_ms + t.prefill_ms,
                1e-6)
        << "id " << t.id;
    EXPECT_GT(t.cached_tokens + t.uncached_tokens, 0) << "id " << t.id;
  }
}

TEST_F(RequestTelemetryTest, WorkerPoolTimelineCompleteness) {
  ServerConfig cfg;
  cfg.n_workers = 2;
  cfg.schemas = {kSchema};
  cfg.link.latency_s = 0.001;  // nonzero transfer phase on first imports
  Server server(model_, workload_.tokenizer(), cfg);
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    server.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts],
                  ask_options());
  }
  const auto responses = server.drain();
  ASSERT_EQ(responses.size(), static_cast<size_t>(n));

  const auto timelines = server.requests().snapshot();
  ASSERT_EQ(timelines.size(), static_cast<size_t>(n));
  EXPECT_EQ(server.requests().recorded(), static_cast<uint64_t>(n));
  EXPECT_EQ(server.requests().dropped(), 0u);
  std::set<uint64_t> ids;
  for (const auto& t : timelines) {
    EXPECT_TRUE(ids.insert(t.id).second) << "duplicate timeline id " << t.id;
    EXPECT_FALSE(t.batched);
    EXPECT_EQ(t.kv_format, "fp32");
    check_timeline_invariants(t);
  }
  ASSERT_EQ(ids.size(), static_cast<size_t>(n));
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), static_cast<uint64_t>(n - 1));
}

TEST_F(RequestTelemetryTest, BatchingTimelineCompleteness) {
  ServerConfig cfg;
  cfg.batching = true;
  cfg.batch.max_batch = 3;
  cfg.batch.chunk_tokens = 2;  // force several prefill chunks per request
  cfg.schemas = {kSchema};
  Server server(model_, workload_.tokenizer(), cfg);
  const int n = 9;
  for (int i = 0; i < n; ++i) {
    server.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts],
                  ask_options());
  }
  (void)server.drain();

  const auto timelines = server.requests().snapshot();
  ASSERT_EQ(timelines.size(), static_cast<size_t>(n));
  std::set<uint64_t> ids;
  for (const auto& t : timelines) {
    EXPECT_TRUE(ids.insert(t.id).second);
    EXPECT_TRUE(t.batched);
    check_timeline_invariants(t);
    if (t.outcome == obs::RequestOutcome::kOk) {
      EXPECT_GE(t.prefill_chunks, 1) << "id " << t.id;
    }
  }
}

TEST_F(RequestTelemetryTest, ChaosTimelinesReconcileWithCounters) {
  FaultInjector::global().configure(
      "seed=11,encode=0.2,link=0.2,evict=0.2,stall=0.1:2");
  SharedModuleStore store(/*device=*/0, /*host=*/0);
  ServerConfig cfg;
  cfg.n_workers = 4;
  cfg.schemas = {kSchema};
  cfg.engine.eager_encode = false;  // encodes happen at serve time
  cfg.link.latency_s = 0.002;       // nonzero so link faults are polled
  Server server(model_, workload_.tokenizer(), store, cfg);
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    server.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts],
                  ask_options());
  }
  (void)server.drain();
  FaultInjector::global().disable();

  const auto timelines = server.requests().snapshot();
  ASSERT_EQ(timelines.size(), static_cast<size_t>(n));
  std::map<obs::RequestOutcome, uint64_t> by_outcome;
  std::set<uint64_t> ids;
  uint64_t retries = 0, deadline_misses = 0;
  for (const auto& t : timelines) {
    EXPECT_TRUE(ids.insert(t.id).second) << "duplicate timeline id " << t.id;
    check_timeline_invariants(t);
    ++by_outcome[t.outcome];
    retries += static_cast<uint64_t>(t.retries);
    if (!t.deadline_met) ++deadline_misses;
    if (t.outcome == obs::RequestOutcome::kDegraded) {
      // Degrade causes are annotated while telemetry is on.
      EXPECT_FALSE(t.annotations.empty()) << "id " << t.id;
    }
  }

  // Exact, not approximate: the timelines are recorded under the same lock
  // that moves the pc_server_* counters.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(n));
  EXPECT_EQ(by_outcome[obs::RequestOutcome::kOk] +
                by_outcome[obs::RequestOutcome::kDegraded],
            stats.completed);
  EXPECT_EQ(by_outcome[obs::RequestOutcome::kDegraded], stats.degraded);
  EXPECT_EQ(by_outcome[obs::RequestOutcome::kTimeout], stats.timeouts);
  EXPECT_EQ(by_outcome[obs::RequestOutcome::kShed], stats.shed);
  EXPECT_EQ(by_outcome[obs::RequestOutcome::kFailed], stats.failed);
  EXPECT_EQ(retries, stats.retries);
  EXPECT_EQ(deadline_misses, stats.deadline_misses);
}

TEST_F(RequestTelemetryTest, WarmServeRecordsCacheEfficacy) {
  ServerConfig cfg;
  cfg.n_workers = 1;  // one engine, so the second serve is surely warm
  cfg.schemas = {kSchema};
  cfg.engine.eager_encode = false;
  Server server(model_, workload_.tokenizer(), cfg);
  server.submit(kPrompts[0], ask_options());
  (void)server.drain();
  server.submit(kPrompts[0], ask_options());
  (void)server.drain();

  const auto timelines = server.requests().snapshot();
  ASSERT_EQ(timelines.size(), 2u);
  const auto& cold = timelines[0];
  const auto& warm = timelines[1];
  ASSERT_EQ(cold.outcome, obs::RequestOutcome::kOk);
  ASSERT_EQ(warm.outcome, obs::RequestOutcome::kOk);
  EXPECT_GT(cold.module_misses, 0);
  EXPECT_EQ(warm.module_misses, 0);
  EXPECT_GT(warm.modules, 0);
  EXPECT_GT(warm.cached_tokens, 0);
  EXPECT_EQ(warm.module_hits(), warm.modules);
  EXPECT_GT(warm.retrieve_ms + warm.prefill_ms, 0.0);
}

TEST_F(RequestTelemetryTest, TtftModelDriftRecorded) {
  ModelSpec spec;
  spec.name = "tiny";
  spec.n_layers = 2;
  spec.d_model = 64;
  spec.n_heads = 4;
  spec.n_kv_heads = 4;
  spec.d_head = 16;
  spec.d_ff = 128;
  spec.vocab_size = 100;
  spec.dtype_bytes = 4;

  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  cfg.ttft_profile = &HardwareProfile::intel_i9_13900k();
  cfg.ttft_spec = spec;
  Server server(model_, workload_.tokenizer(), cfg);
  server.submit(kPrompts[0], ask_options());
  server.submit(kPrompts[0], ask_options());
  (void)server.drain();

  const auto timelines = server.requests().snapshot();
  ASSERT_EQ(timelines.size(), 2u);
  int predicted = 0;
  for (const auto& t : timelines) {
    if (t.outcome == obs::RequestOutcome::kOk && t.cached_tokens > 0) {
      EXPECT_GT(t.predicted_ttft_ms, 0.0) << "id " << t.id;
      ++predicted;
    }
  }
  EXPECT_GT(predicted, 0);
  const std::string prom = server.metrics_prometheus();
  EXPECT_NE(prom.find("pc_ttft_model_drift"), std::string::npos);
}

TEST_F(RequestTelemetryTest, RequestLogJsonlRoundTrip) {
  const std::string log_path = ::testing::TempDir() + "pc_reqlog_test.jsonl";
  const std::string dump_path = ::testing::TempDir() + "pc_reqdump_test.jsonl";
  obs::set_request_log_path(log_path);
  uint64_t recorded = 0;
  {
    ServerConfig cfg;
    cfg.n_workers = 2;
    cfg.schemas = {kSchema};
    Server server(model_, workload_.tokenizer(), cfg);
    for (int i = 0; i < 6; ++i) {
      server.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts],
                    ask_options());
    }
    (void)server.drain();
    recorded = server.requests().recorded();
    ASSERT_TRUE(server.write_request_log(dump_path));
  }
  obs::set_request_log_path("");  // close + flush the live sink

  for (const std::string& path : {log_path, dump_path}) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::string line;
    std::set<uint64_t> ids;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const obs::JsonValue v = obs::JsonReader::parse(line);
      ASSERT_TRUE(v.is_object()) << path;
      EXPECT_TRUE(ids.insert(static_cast<uint64_t>(v["id"].as_number(9999)))
                      .second);
      EXPECT_NE(v["outcome"].as_string(), "pending");
      EXPECT_EQ(v["kv_format"].as_string(), "fp32");
    }
    EXPECT_EQ(ids.size(), recorded) << path;
  }
  std::remove(log_path.c_str());
  std::remove(dump_path.c_str());
}

TEST_F(RequestTelemetryTest, ToggleDisablesTimelines) {
  obs::set_request_telemetry(false);
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  Server server(model_, workload_.tokenizer(), cfg);
  server.submit(kPrompts[0], ask_options());
  const auto responses = server.drain();
  obs::set_request_telemetry(true);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk);  // serving unaffected
  EXPECT_EQ(server.requests().recorded(), 0u);
}

TEST_F(RequestTelemetryTest, RequestTrackerRingEvicts) {
  obs::RequestTracker tracker(/*capacity=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    obs::RequestTimeline t;
    t.id = i;
    t.outcome = obs::RequestOutcome::kOk;
    tracker.record(std::move(t));
  }
  EXPECT_EQ(tracker.recorded(), 10u);
  EXPECT_EQ(tracker.dropped(), 6u);
  const auto kept = tracker.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().id, 6u);  // oldest evicted first
  EXPECT_EQ(kept.back().id, 9u);
}

TEST_F(RequestTelemetryTest, SloTrackerWindowMath) {
  obs::SloConfig cfg;
  cfg.window_s = 10.0;
  cfg.availability_target = 0.9;
  obs::SloTracker slo(cfg);

  for (int i = 0; i < 9; ++i) slo.record_at(1.0, /*served=*/true, true);
  slo.record_at(1.0, /*served=*/false, false);
  auto s = slo.snapshot_at(1.0);
  EXPECT_EQ(s.total, 10u);
  EXPECT_EQ(s.served, 9u);
  EXPECT_EQ(s.deadline_misses, 1u);
  EXPECT_NEAR(s.availability, 0.9, 1e-12);
  EXPECT_NEAR(s.miss_rate, 0.1, 1e-12);
  EXPECT_NEAR(s.burn_rate, 1.0, 1e-12);  // miss_rate / (1 - 0.9)
  EXPECT_FALSE(s.breached);              // 0.9 >= target

  // A second failure breaches; re-serving within the window recovers; the
  // breach transition is counted once.
  slo.record_at(2.0, /*served=*/false, false);
  s = slo.snapshot_at(2.0);
  EXPECT_TRUE(s.breached);
  EXPECT_EQ(s.breaches, 1u);
  for (int i = 0; i < 20; ++i) slo.record_at(3.0, true, true);
  s = slo.snapshot_at(3.0);
  EXPECT_FALSE(s.breached);
  EXPECT_EQ(s.breaches, 1u);

  // Outcomes age out of the window entirely.
  s = slo.snapshot_at(20.0);
  EXPECT_EQ(s.total, 0u);
  EXPECT_NEAR(s.availability, 1.0, 1e-12);
}

TEST_F(RequestTelemetryTest, MetricsSamplerCapturesSeries) {
  auto counter = obs::MetricsRegistry::global().counter(
      "pc_test_sampler_total", "test counter for the sampler");
  obs::SamplerConfig cfg;
  cfg.families = {"pc_test_sampler_total"};
  cfg.ring_capacity = 8;
  obs::MetricsSampler sampler(cfg);

  counter.inc(5);
  sampler.sample_once();
  counter.inc(2);
  sampler.sample_once();
  EXPECT_EQ(sampler.ticks(), 2u);

  const auto series = sampler.snapshot();
  ASSERT_EQ(series.count("pc_test_sampler_total"), 1u);
  const auto& points = series.at("pc_test_sampler_total");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GE(points[1].value, points[0].value + 2.0);
  EXPECT_GE(points[1].t_s, points[0].t_s);
  // Only the selected family was sampled.
  EXPECT_EQ(series.size(), 1u);

  const std::string path = ::testing::TempDir() + "pc_sampler_test.json";
  ASSERT_TRUE(sampler.write_json(path));
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const obs::JsonValue root = obs::JsonReader::parse(buf.str());
  EXPECT_TRUE(root["series"]["pc_test_sampler_total"].is_array());
  std::remove(path.c_str());
}

TEST_F(RequestTelemetryTest, MetricsSamplerBackgroundThread) {
  obs::SamplerConfig cfg;
  cfg.hz = 200.0;
  obs::MetricsSampler sampler(cfg);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  while (sampler.ticks() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.ticks(), 3u);
}

TEST_F(RequestTelemetryTest, FaultMarkersAndFlowArcsInTrace) {
  FaultInjector::global().configure("seed=3,encode=0.5");
  obs::clear_traces();
  obs::set_tracing(true);
  const std::string trace_path = ::testing::TempDir() + "pc_flow_test.json";
  {
    ServerConfig cfg;
    cfg.n_workers = 2;
    cfg.schemas = {kSchema};
    cfg.engine.eager_encode = false;
    Server server(model_, workload_.tokenizer(), cfg);
    for (int i = 0; i < 8; ++i) {
      server.submit(kPrompts[static_cast<size_t>(i) % kNumPrompts],
                    ask_options());
    }
    (void)server.drain();
    ASSERT_TRUE(server.write_trace_json(trace_path));
    server.stop();
  }
  obs::set_tracing(false);
  FaultInjector::global().disable();

  bool saw_instant = false, saw_flow_start = false, saw_flow_end = false;
  for (const auto& lane : obs::collect_traces()) {
    for (const auto& e : lane.events) {
      if (e.kind == obs::EventKind::kInstant &&
          std::string_view(e.name).rfind("fault_inject_", 0) == 0) {
        saw_instant = true;
      }
      if (e.kind == obs::EventKind::kFlowStart) saw_flow_start = true;
      if (e.kind == obs::EventKind::kFlowEnd) saw_flow_end = true;
    }
  }
  EXPECT_TRUE(saw_instant);     // satellite: injections land on the timeline
  EXPECT_TRUE(saw_flow_start);  // submit side of the request arc
  EXPECT_TRUE(saw_flow_end);    // serving side of the request arc

  // The exported JSON carries the Perfetto flow/instant phases.
  std::ifstream in(trace_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("fault_inject_encode"), std::string::npos);
  const obs::JsonValue root = obs::JsonReader::parse(json);  // well-formed
  EXPECT_TRUE(root["traceEvents"].is_array());
  std::remove(trace_path.c_str());
}

#else  // !PC_OBS_ENABLED

TEST_F(RequestTelemetryTest, StubsAreInertButServingWorks) {
  EXPECT_FALSE(obs::request_telemetry_enabled());
  ServerConfig cfg;
  cfg.n_workers = 1;
  cfg.schemas = {kSchema};
  Server server(model_, workload_.tokenizer(), cfg);
  server.submit(kPrompts[0], ask_options());
  const auto responses = server.drain();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, ServeStatus::kOk);
  EXPECT_EQ(server.requests().recorded(), 0u);
  EXPECT_TRUE(server.requests().snapshot().empty());
  EXPECT_FALSE(server.write_request_log("/tmp/should_not_exist.jsonl"));
  const auto slo = server.slo_snapshot();
  EXPECT_EQ(slo.total, 0u);
  obs::MetricsSampler sampler;
  sampler.start();
  sampler.sample_once();
  EXPECT_EQ(sampler.ticks(), 0u);
  EXPECT_FALSE(sampler.running());
}

#endif  // PC_OBS_ENABLED

}  // namespace
}  // namespace pc
