// Tests for the hand-constructed induction-head model: in-context copying
// must work through the plain engine, through discontinuous positions, and
// must break exactly at module boundaries under module-masked encoding —
// the mechanism behind the Table 1 accuracy experiments.
#include <gtest/gtest.h>

#include <numeric>

#include "model/induction.h"

namespace pc {
namespace {

constexpr int kVocab = 48;
constexpr int kMaxPos = 128;

Model make_model() {
  InductionModelOptions opt;
  opt.vocab_size = kVocab;
  opt.max_pos = kMaxPos;
  return make_induction_model(opt);
}

std::vector<int> iota_positions(size_t n, int start = 0) {
  std::vector<int> p(n);
  std::iota(p.begin(), p.end(), start);
  return p;
}

// Greedy-decode `steps` tokens after prefilling `prompt` at contiguous
// positions starting from `start_pos`.
std::vector<TokenId> run(const Model& model, std::vector<TokenId> prompt,
                         int steps, int start_pos = 0) {
  KVCache cache = model.make_cache();
  const auto pos = iota_positions(prompt.size(), start_pos);
  const Tensor logits = model.forward(prompt, pos, cache);
  GenerateOptions opts;
  opts.max_new_tokens = steps;
  opts.stop_tokens.clear();
  return model.generate_greedy(
      logits, start_pos + static_cast<int>(prompt.size()), cache, opts);
}

TEST(Induction, CopiesSingleFact) {
  const Model model = make_model();
  // context: 7 8 [K=20 V1=30 V2=31] 9 10 ... query: 20
  const std::vector<TokenId> prompt = {7, 8, 20, 30, 31, 9, 10, 20};
  const auto out = run(model, prompt, 2);
  EXPECT_EQ(out, (std::vector<TokenId>{30, 31}));
}

TEST(Induction, CopiesLongValueChain) {
  const Model model = make_model();
  const std::vector<TokenId> prompt = {5, 20, 30, 31, 32, 33, 6, 20};
  const auto out = run(model, prompt, 4);
  EXPECT_EQ(out, (std::vector<TokenId>{30, 31, 32, 33}));
}

TEST(Induction, SelectsQueriedFactAmongMany) {
  const Model model = make_model();
  const std::vector<TokenId> prompt = {20, 30, 2,  21, 31, 2, 22, 32, 2,
                                       23, 33, 2,  21};
  const auto out = run(model, prompt, 1);
  EXPECT_EQ(out, (std::vector<TokenId>{31}));
}

TEST(Induction, WorksAtShiftedPositions) {
  const Model model = make_model();
  const std::vector<TokenId> prompt = {7, 20, 30, 31, 8, 20};
  const auto base = run(model, prompt, 2, 0);
  const auto shifted = run(model, prompt, 2, 50);
  EXPECT_EQ(base, (std::vector<TokenId>{30, 31}));
  EXPECT_EQ(shifted, base);
}

// Module-concatenated retrieval: the fact lives wholly inside one module;
// the query arrives as the uncached suffix. Retrieval must survive caching.
TEST(Induction, RetrievesFromConcatenatedModules) {
  const Model model = make_model();

  const std::vector<TokenId> doc1 = {7, 8, 9, 10, 11};          // distractor
  const std::vector<TokenId> doc2 = {12, 20, 30, 31, 2, 13};    // fact here
  const std::vector<TokenId> query = {20};

  KVCache enc1 = model.make_cache();
  (void)model.forward(doc1, iota_positions(doc1.size(), 0), enc1);
  KVCache enc2 = model.make_cache();
  (void)model.forward(doc2, iota_positions(doc2.size(), 5), enc2);

  KVCache seq = model.make_cache();
  seq.append_copy(enc1);
  seq.append_copy(enc2);
  const Tensor logits = model.forward(query, iota_positions(1, 11), seq);

  GenerateOptions opts;
  opts.max_new_tokens = 2;
  opts.stop_tokens.clear();
  const auto out = model.generate_greedy(logits, 12, seq, opts);
  EXPECT_EQ(out, (std::vector<TokenId>{30, 31}));
}

// A fact straddling a module boundary is retrievable by a full prefill but
// NOT by module-masked encoding: the previous-token link between the key
// (end of module A) and the first value (start of module B) is severed.
// This is the paper's semantic-dependence caveat (§3.3) made concrete.
TEST(Induction, BoundaryStraddlingFactLostUnderCaching) {
  const Model model = make_model();

  const std::vector<TokenId> part_a = {7, 8, 20};        // ends with key
  const std::vector<TokenId> part_b = {30, 31, 9, 10};   // starts with values
  const std::vector<TokenId> query = {20};

  // Baseline: one contiguous prefill retrieves the fact.
  std::vector<TokenId> full = part_a;
  full.insert(full.end(), part_b.begin(), part_b.end());
  full.push_back(20);
  const auto baseline = run(model, full, 2);
  EXPECT_EQ(baseline, (std::vector<TokenId>{30, 31}));

  // Cached: encode the parts separately, concatenate, query.
  KVCache enc_a = model.make_cache();
  (void)model.forward(part_a, iota_positions(part_a.size(), 0), enc_a);
  KVCache enc_b = model.make_cache();
  (void)model.forward(part_b, iota_positions(part_b.size(), 3), enc_b);

  KVCache seq = model.make_cache();
  seq.append_copy(enc_a);
  seq.append_copy(enc_b);
  const Tensor logits = model.forward(query, iota_positions(1, 7), seq);
  GenerateOptions opts;
  opts.max_new_tokens = 2;
  opts.stop_tokens.clear();
  const auto cached = model.generate_greedy(logits, 8, seq, opts);
  EXPECT_NE(cached, baseline);
}

// Joint (scaffold-style) encoding of both parts restores the fact (§3.3).
TEST(Induction, JointEncodingRestoresStraddlingFact) {
  const Model model = make_model();

  const std::vector<TokenId> part_a = {7, 8, 20};
  const std::vector<TokenId> part_b = {30, 31, 9, 10};
  std::vector<TokenId> joint = part_a;
  joint.insert(joint.end(), part_b.begin(), part_b.end());

  KVCache enc = model.make_cache();
  (void)model.forward(joint, iota_positions(joint.size(), 0), enc);

  KVCache seq = model.make_cache();
  seq.append_copy(enc);
  const std::vector<TokenId> query = {20};
  const Tensor logits = model.forward(query, iota_positions(1, 7), seq);
  GenerateOptions opts;
  opts.max_new_tokens = 2;
  opts.stop_tokens.clear();
  const auto out = model.generate_greedy(logits, 8, seq, opts);
  EXPECT_EQ(out, (std::vector<TokenId>{30, 31}));
}

// The surrogate must stay correct across the attention-sharpness range the
// Table 1 variants use: retrieval works and the boundary-severing effect
// persists at every beta.
class InductionBetaSweep : public ::testing::TestWithParam<float> {};

TEST_P(InductionBetaSweep, RetrievalAndBoundaryEffectHoldAcrossSharpness) {
  InductionModelOptions opt;
  opt.vocab_size = kVocab;
  opt.max_pos = kMaxPos;
  opt.beta1 = GetParam();
  opt.beta2 = GetParam();
  const Model model = make_induction_model(opt);

  // Plain retrieval among distractors.
  const std::vector<TokenId> prompt = {7, 8, 20, 30, 31, 2, 9, 21, 32, 2,
                                       10, 20};
  const auto out = run(model, prompt, 2);
  EXPECT_EQ(out, (std::vector<TokenId>{30, 31})) << "beta=" << GetParam();

  // Straddling fact severed by module-masked encoding.
  const std::vector<TokenId> part_a = {7, 8, 20};
  const std::vector<TokenId> part_b = {30, 31, 9, 10};
  KVCache enc_a = model.make_cache();
  (void)model.forward(part_a, iota_positions(part_a.size(), 0), enc_a);
  KVCache enc_b = model.make_cache();
  (void)model.forward(part_b, iota_positions(part_b.size(), 3), enc_b);
  KVCache seq = model.make_cache();
  seq.append_copy(enc_a);
  seq.append_copy(enc_b);
  const std::vector<TokenId> query = {20};
  const Tensor logits = model.forward(query, iota_positions(1, 7), seq);
  GenerateOptions opts;
  opts.max_new_tokens = 2;
  opts.stop_tokens.clear();
  const auto cached = model.generate_greedy(logits, 8, seq, opts);
  EXPECT_NE(cached, (std::vector<TokenId>{30, 31})) << "beta=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sharpness, InductionBetaSweep,
                         ::testing::Values(12.0f, 16.0f, 20.0f, 24.0f,
                                           28.0f));

TEST(Induction, DimensionsFollowConstruction) {
  const Model model = make_model();
  // 3V + P rounded up to the Q4_0 block size (32) so blocked KV formats
  // pack without partial-block waste.
  EXPECT_EQ(model.config().d_model, (3 * kVocab + kMaxPos + 31) / 32 * 32);
  EXPECT_EQ(model.config().n_layers, 2);
  EXPECT_FALSE(model.config().use_mlp);
}

}  // namespace
}  // namespace pc
