// Property-based tests over randomly generated schemas and prompts.
//
// A generator builds random PML schemas (nested modules, unions, params,
// anonymous text) and random conforming prompts (subset imports, union
// choices, arguments, interleaved text). For every (seed) instance we
// check:
//   * layout well-formedness: disjoint extents outside unions, shared
//     union starts, in-range positions;
//   * binding well-formedness: included modules unique, args within
//     budget, next_pos past every used position;
//   * the central equivalence: engine-assembled cached inference —
//     including parameter-argument substitution — is bitwise identical to
//     one block-masked prefill in which <unk> placeholder rows are hidden
//     from global tokens (§3.3);
//   * determinism of serve() and its agreement across copy and zero-copy
//     paths.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/engine.h"
#include "model/model.h"
#include "tensor/ops.h"

namespace pc {
namespace {

struct GeneratedCase {
  std::string schema_pml;
  std::string prompt_pml;
  bool has_args = false;
};

class CaseGenerator {
 public:
  explicit CaseGenerator(uint64_t seed) : rng_(seed) {}

  GeneratedCase generate() {
    GeneratedCase out;
    module_counter_ = 0;
    importable_.clear();

    std::string schema = "<schema name=\"fuzz\">\n";
    const int n_items = static_cast<int>(rng_.uniform_int(2, 5));
    for (int i = 0; i < n_items; ++i) {
      schema += top_level_item();
    }
    schema += "</schema>\n";
    out.schema_pml = std::move(schema);

    // Prompt: a random subset of importable module trees, with text
    // sprinkled between them.
    std::string prompt = "<prompt schema=\"fuzz\">\n";
    bool any = false;
    for (const auto& tree : importable_) {
      if (!rng_.bernoulli(0.7)) continue;
      any = true;
      prompt += render_import(tree, out);
      if (rng_.bernoulli(0.5)) prompt += words(2) + "\n";
    }
    if (!any && !importable_.empty()) {
      prompt += render_import(importable_.front(), out);
    }
    prompt += words(3) + " ?\n</prompt>\n";
    out.prompt_pml = std::move(prompt);
    return out;
  }

 private:
  struct ImportTree {
    std::string name;
    std::vector<std::pair<std::string, int>> params;  // name, budget
    std::vector<std::vector<ImportTree>> unions;      // choose <= 1 each
    std::vector<ImportTree> children;                 // optional nested
  };

  std::string words(int n) {
    static const char* kWords[] = {"the", "cache", "prompt", "state",
                                   "module", "answer", "system", "work",
                                   "light", "water", "paper", "city"};
    std::string out;
    for (int i = 0; i < n; ++i) {
      if (i) out += ' ';
      out += kWords[rng_.next_below(sizeof(kWords) / sizeof(kWords[0]))];
    }
    return out;
  }

  std::string fresh_name() { return "m" + std::to_string(module_counter_++); }

  std::string top_level_item() {
    const double roll = rng_.next_double();
    if (roll < 0.2) {
      return "  " + words(static_cast<int>(rng_.uniform_int(2, 6))) + "\n";
    }
    if (roll < 0.35) {
      // Top-level union of 2-3 leaf modules.
      std::string s = "  <union>\n";
      std::vector<ImportTree> members;
      const int n = static_cast<int>(rng_.uniform_int(2, 3));
      for (int i = 0; i < n; ++i) {
        ImportTree t{fresh_name(), {}, {}, {}};
        s += "    <module name=\"" + t.name + "\">" +
             words(static_cast<int>(rng_.uniform_int(3, 8))) + "</module>\n";
        members.push_back(std::move(t));
      }
      s += "  </union>\n";
      unions_holder_.push_back(std::move(members));
      ImportTree group;  // represent the union via a synthetic chooser
      group.name = "";   // empty name = union choice at top level
      group.unions.push_back(unions_holder_.back());
      importable_.push_back(std::move(group));
      return s;
    }
    // A module, possibly with params and one nested module or union.
    ImportTree tree{fresh_name(), {}, {}, {}};
    std::string s = "  <module name=\"" + tree.name + "\">\n";
    s += "    " + words(static_cast<int>(rng_.uniform_int(3, 8))) + "\n";
    if (rng_.bernoulli(0.4)) {
      const std::string pname = "p" + std::to_string(module_counter_++);
      const int budget = static_cast<int>(rng_.uniform_int(2, 5));
      s += "    <param name=\"" + pname + "\" len=\"" +
           std::to_string(budget) + "\"/>\n";
      tree.params.emplace_back(pname, budget);
    }
    if (rng_.bernoulli(0.35)) {
      ImportTree child{fresh_name(), {}, {}, {}};
      s += "    <module name=\"" + child.name + "\">" +
           words(static_cast<int>(rng_.uniform_int(2, 6))) + "</module>\n";
      tree.children.push_back(std::move(child));
    } else if (rng_.bernoulli(0.3)) {
      std::vector<ImportTree> members;
      s += "    <union>\n";
      for (int i = 0; i < 2; ++i) {
        ImportTree m{fresh_name(), {}, {}, {}};
        s += "      <module name=\"" + m.name + "\">" + words(3) +
             "</module>\n";
        members.push_back(std::move(m));
      }
      s += "    </union>\n";
      tree.unions.push_back(std::move(members));
    }
    s += "    " + words(2) + "\n  </module>\n";
    importable_.push_back(std::move(tree));
    return s;
  }

  std::string render_import(const ImportTree& tree, GeneratedCase& out) {
    if (tree.name.empty()) {
      // Union group: pick at most one member.
      const auto& members = tree.unions.front();
      if (rng_.bernoulli(0.2)) return "";  // skip the union entirely
      const ImportTree& pick =
          members[rng_.next_below(members.size())];
      return render_import(pick, out);
    }
    std::string s = "<" + tree.name;
    for (const auto& [pname, budget] : tree.params) {
      if (!rng_.bernoulli(0.7)) continue;
      const int n = static_cast<int>(rng_.uniform_int(1, budget));
      s += " " + pname + "=\"" + words(n) + "\"";
      out.has_args = true;
    }
    std::string inner;
    for (const auto& child : tree.children) {
      if (rng_.bernoulli(0.6)) inner += render_import(child, out);
    }
    for (const auto& members : tree.unions) {
      if (rng_.bernoulli(0.3)) continue;
      inner += render_import(members[rng_.next_below(members.size())], out);
    }
    if (inner.empty()) return s + "/>\n";
    return s + ">\n" + inner + "</" + tree.name + ">\n";
  }

  Rng rng_;
  int module_counter_ = 0;
  std::vector<ImportTree> importable_;
  std::vector<std::vector<ImportTree>> unions_holder_;
};

class PropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  PropertyTest()
      : tokenizer_(Vocab::basic_english()),
        model_([] {
          ModelConfig c = ModelConfig::llama_tiny(
              Vocab::basic_english().size(), 1024);
          c.d_model = 96;
          c.n_layers = 2;
          c.n_heads = 4;
          c.n_kv_heads = 2;
          c.d_head = 24;
          c.d_ff = 128;
          return Model::random(c, 77);
        }()) {}

  Tokenizer tokenizer_;
  Model model_;
};

TEST_P(PropertyTest, LayoutAndBindingInvariants) {
  CaseGenerator gen(GetParam());
  const GeneratedCase c = gen.generate();

  PromptCacheEngine engine(model_, tokenizer_);
  const pml::Schema& schema = engine.load_schema(c.schema_pml);

  // Layout: every module's extent is in range and consistent.
  for (const auto& m : schema.modules) {
    EXPECT_GE(m.start_pos, 0);
    EXPECT_LE(m.start_pos, m.end_pos);
    EXPECT_LE(m.end_pos, schema.total_positions);
    for (const auto& piece : m.pieces) {
      EXPECT_GE(piece.start_pos, m.start_pos);
      EXPECT_LE(piece.start_pos + static_cast<int>(piece.tokens.size()),
                m.end_pos);
    }
  }
  // Union members share starts; non-union top-level siblings are disjoint.
  for (const auto& u : schema.unions) {
    for (int mi : u.members) {
      EXPECT_EQ(schema.module(mi).start_pos, u.start_pos);
      EXPECT_LE(schema.module(mi).end_pos, u.end_pos);
    }
  }

  const pml::PromptBinding binding = engine.bind(c.prompt_pml);
  // No module included twice.
  std::vector<int> mods = binding.modules;
  std::sort(mods.begin(), mods.end());
  EXPECT_TRUE(std::adjacent_find(mods.begin(), mods.end()) == mods.end());
  // At most one member per union.
  for (const auto& u : schema.unions) {
    int used = 0;
    for (int mi : u.members) {
      if (std::find(mods.begin(), mods.end(), mi) != mods.end()) ++used;
    }
    EXPECT_LE(used, 1);
  }
  // Args respect budgets; next_pos covers everything.
  for (const auto& a : binding.args) {
    const auto& p = schema.module(a.module_index)
                        .params[static_cast<size_t>(a.param_index)];
    EXPECT_LE(static_cast<int>(a.tokens.size()), p.max_len);
    EXPECT_LE(a.start_pos + static_cast<int>(a.tokens.size()),
              binding.next_pos);
  }
  for (const auto& t : binding.texts) {
    EXPECT_LE(t.start_pos + static_cast<int>(t.tokens.size()),
              binding.next_pos);
  }
  EXPECT_EQ(static_cast<int>(binding.baseline_tokens.size()),
            binding.cached_token_count() + binding.uncached_token_count());
}

TEST_P(PropertyTest, CachedEqualsBlockedPrefill) {
  CaseGenerator gen(GetParam());
  const GeneratedCase c = gen.generate();

  // Bitwise fp32 regression guard: must stay fp32 even when the suite runs
  // with PC_KV_FORMAT=q8 (quantized retrieval is covered by its own tests).
  EngineConfig fp32;
  fp32.precision = StorePrecision::kFp32;
  PromptCacheEngine engine(model_, tokenizer_, fp32);
  engine.load_schema(c.schema_pml);
  const pml::PromptBinding binding = engine.bind(c.prompt_pml);

  KVCache cached = model_.make_cache();
  const Tensor cached_logits =
      engine.assemble_and_prefill(binding, cached, nullptr);

  // Blocked reference in ONE forward. Module rows (including <unk>
  // placeholder rows) use per-module blocks; placeholder rows are
  // additionally hidden from global tokens — module encoding attends to
  // them, but they are never copied into the serving cache (§3.3).
  // Arguments and texts are global rows in position order, exactly as the
  // engine's uncached pass orders them.
  std::vector<TokenId> tokens;
  std::vector<int> pos;
  std::vector<int> blocks;
  std::vector<uint8_t> hidden;            // bool, vector<bool> has no data()
  std::vector<int> engine_row_of;         // reference row -> cached row
  int block = 0;
  int engine_rows = 0;
  for (int mi : binding.modules) {
    ++block;
    for (const pml::TokenRun& run : binding.schema->module_own_runs(mi)) {
      for (size_t i = 0; i < run.tokens.size(); ++i) {
        tokens.push_back(run.tokens[i]);
        pos.push_back(run.start_pos + static_cast<int>(i));
        blocks.push_back(block);
        hidden.push_back(run.is_param ? 1 : 0);
        engine_row_of.push_back(run.is_param ? -1 : engine_rows++);
      }
    }
  }
  struct Seg {
    int start;
    int seq;
    const std::vector<TokenId>* toks;
  };
  std::vector<Seg> segs;
  int seq = 0;
  for (const pml::BoundArg& a : binding.args) {
    segs.push_back({a.start_pos, seq++, &a.tokens});
  }
  for (const pml::BoundText& t : binding.texts) {
    segs.push_back({t.start_pos, seq++, &t.tokens});
  }
  std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
    return a.start != b.start ? a.start < b.start : a.seq < b.seq;
  });
  for (const Seg& s : segs) {
    for (size_t i = 0; i < s.toks->size(); ++i) {
      tokens.push_back((*s.toks)[i]);
      pos.push_back(s.start + static_cast<int>(i));
      blocks.push_back(Model::kGlobalBlock);
      hidden.push_back(0);
      engine_row_of.push_back(engine_rows++);
    }
  }
  if (tokens.empty()) GTEST_SKIP() << "degenerate empty prompt";

  // std::span<const bool> over vector<bool> is impossible; use a plain
  // bool array copy.
  std::unique_ptr<bool[]> hidden_arr(new bool[hidden.size()]);
  for (size_t i = 0; i < hidden.size(); ++i) hidden_arr[i] = hidden[i] != 0;

  KVCache reference = model_.make_cache();
  const Tensor ref_logits = model_.forward_blocked(
      tokens, pos, blocks, reference, /*return_all_logits=*/false,
      std::span<const bool>(hidden_arr.get(), hidden.size()));

  ASSERT_EQ(cached.size(), engine_rows);
  EXPECT_EQ(max_abs_diff(cached_logits, ref_logits), 0.0f);
  // Row-level equality for every non-placeholder row.
  for (int rref = 0; rref < reference.size(); ++rref) {
    const int rcached = engine_row_of[static_cast<size_t>(rref)];
    if (rcached < 0) continue;
    ASSERT_EQ(reference.pos_id(rref), cached.pos_id(rcached));
    for (int l = 0; l < model_.config().n_layers; ++l) {
      for (int e = 0; e < model_.config().kv_dim(); ++e) {
        ASSERT_EQ(reference.k_row(l, rref)[e], cached.k_row(l, rcached)[e])
            << "row " << rref;
        ASSERT_EQ(reference.v_row(l, rref)[e], cached.v_row(l, rcached)[e]);
      }
    }
  }
}

TEST_P(PropertyTest, ServeIsDeterministicAndPathsAgree) {
  CaseGenerator gen(GetParam());
  const GeneratedCase c = gen.generate();

  GenerateOptions opts;
  opts.max_new_tokens = 4;
  opts.stop_tokens.clear();

  PromptCacheEngine engine(model_, tokenizer_);
  engine.load_schema(c.schema_pml);
  const ServeResult a = engine.serve(c.prompt_pml, opts);
  const ServeResult b = engine.serve(c.prompt_pml, opts);
  EXPECT_EQ(a.tokens, b.tokens);

  EngineConfig zc;
  zc.zero_copy = true;
  PromptCacheEngine zero(model_, tokenizer_, zc);
  zero.load_schema(c.schema_pml);
  const ServeResult z = zero.serve(c.prompt_pml, opts);
  EXPECT_EQ(z.tokens, a.tokens);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace pc
