// Tests for the prefix-cache baseline and its defining limitation: exact
// reuse on literal prefixes, nothing on reordered content — the contrast
// with Prompt Cache's modular reuse (§2.2).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/prefix_cache.h"
#include "eval/workload.h"
#include "model/induction.h"

namespace pc {
namespace {

class PrefixCacheTest : public ::testing::Test {
 protected:
  PrefixCacheTest()
      : workload_(7),
        model_(make_induction_model({workload_.vocab().size(), 384})) {}

  std::vector<TokenId> encode(const std::string& text) {
    return workload_.tokenizer().encode(text);
  }

  GenerateOptions answer_options() const {
    GenerateOptions o;
    o.max_new_tokens = 5;
    o.stop_tokens = {workload_.stop_token()};
    return o;
  }

  AccuracyWorkload workload_;
  Model model_;
};

TEST_F(PrefixCacheTest, RepeatedPromptIsFullyReused) {
  PrefixCacheEngine engine(model_, workload_.tokenizer());
  const auto prompt = encode("w00 w01 q05 a10 a11 . w02 question: q05");

  const auto first = engine.serve(prompt, answer_options());
  EXPECT_EQ(first.reused_tokens, 0);
  EXPECT_EQ(first.text, "a10 a11");

  const auto second = engine.serve(prompt, answer_options());
  EXPECT_EQ(second.reused_tokens, static_cast<int>(prompt.size()) - 1);
  EXPECT_EQ(second.computed_tokens, 1);
  EXPECT_EQ(second.text, first.text);
  EXPECT_EQ(engine.stats().full_hits, 1u);
}

TEST_F(PrefixCacheTest, SharedPrefixPartiallyReused) {
  PrefixCacheEngine engine(model_, workload_.tokenizer());
  const auto a = encode("w00 w01 q05 a10 a11 . question: q05");
  const auto b = encode("w00 w01 q05 a10 a11 . w02 w03 question: q05");
  (void)engine.serve(a, answer_options());
  const auto r = engine.serve(b, answer_options());
  EXPECT_EQ(r.reused_tokens, 6);  // the common "w00 w01 q05 a10 a11 ."
  EXPECT_EQ(r.text, "a10 a11");
  EXPECT_EQ(engine.stats().partial_hits, 1u);
}

// The defining failure: the same documents in a different ORDER share no
// prefix, so nothing is reused — while Prompt Cache reuses everything.
TEST_F(PrefixCacheTest, ReorderedContentDefeatsPrefixReuseButNotPromptCache) {
  const std::string doc_a = "w00 w01 q05 a10 a11 . w02";
  const std::string doc_b = "w03 w04 q06 a12 a13 . w05";
  const std::string question = "question: q06";

  PrefixCacheEngine prefix(model_, workload_.tokenizer());
  (void)prefix.serve(encode(doc_a + " " + doc_b + " " + question),
                     answer_options());
  const auto reordered =
      prefix.serve(encode(doc_b + " " + doc_a + " " + question),
                   answer_options());
  EXPECT_EQ(reordered.reused_tokens, 0);
  EXPECT_EQ(prefix.stats().misses, 2u);

  PromptCacheEngine modular(model_, workload_.tokenizer());
  modular.load_schema(R"(
    <schema name="m">
      <module name="da">w00 w01 q05 a10 a11 . w02</module>
      <module name="db">w03 w04 q06 a12 a13 . w05</module>
    </schema>)");
  (void)modular.serve(R"(<prompt schema="m"><da/><db/> question: q06</prompt>)",
                      answer_options());
  const ServeResult r = modular.serve(
      R"(<prompt schema="m"><db/><da/> question: q06</prompt>)",
      answer_options());
  // Every document token is reused regardless of import order.
  EXPECT_EQ(r.ttft.cached_tokens, 14);
  EXPECT_EQ(r.text, "a12 a13");
}

TEST_F(PrefixCacheTest, CapacityEvictsLru) {
  const auto p1 = encode("w00 w01 w02 w03 question: q05");
  const auto p2 = encode("w04 w05 w06 w07 question: q05");
  const size_t one_entry = static_cast<size_t>(p1.size()) *
                           static_cast<size_t>(2) *
                           model_.config().n_layers * model_.config().kv_dim() *
                           sizeof(float);
  PrefixCacheEngine engine(model_, workload_.tokenizer(),
                           one_entry + one_entry / 2);
  (void)engine.serve(p1, answer_options());
  (void)engine.serve(p2, answer_options());  // evicts p1
  EXPECT_GT(engine.stats().evictions, 0u);
  EXPECT_EQ(engine.longest_prefix(p1), 0);
  EXPECT_GT(engine.longest_prefix(p2), 0);
}

TEST_F(PrefixCacheTest, ContractsEnforced) {
  PrefixCacheEngine engine(model_, workload_.tokenizer());
  EXPECT_THROW(engine.serve({}, answer_options()), ContractViolation);
  std::vector<TokenId> too_long(
      static_cast<size_t>(model_.config().max_pos) + 1, 5);
  EXPECT_THROW(engine.serve(too_long, answer_options()), ContractViolation);
}

}  // namespace
}  // namespace pc
