// Unit tests for the two-tier module store: placement, LRU eviction,
// pinning, tier promotion, and the engine's union-sibling prefetch.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/module_store.h"
#include "eval/workload.h"
#include "model/induction.h"

namespace pc {
namespace {

EncodedModule make_module(int n_tokens) {
  EncodedModule m;
  m.precision = StorePrecision::kFp32;
  m.n_tokens = n_tokens;
  m.kv_dim = 8;
  m.n_layers = 2;
  KVCache kv(2, 8);
  std::vector<int> pos(static_cast<size_t>(n_tokens));
  for (int i = 0; i < n_tokens; ++i) pos[static_cast<size_t>(i)] = i;
  kv.append_tokens(pos);
  m.kv32 = std::move(kv);
  m.text_row_ranges = {{0, n_tokens}};
  return m;
}

size_t module_bytes(int n_tokens) { return make_module(n_tokens).payload_bytes(); }

TEST(ModuleStore, PlacesDeviceFirstThenSpillsToHost) {
  ModuleStore store(/*device=*/module_bytes(4), /*host=*/0);
  store.insert("a", make_module(4));
  ModuleLocation loc;
  ASSERT_NE(store.find("a", &loc), nullptr);
  EXPECT_EQ(loc, ModuleLocation::kDeviceMemory);

  // Device is full but host has room: spill, don't evict — every module
  // stays resident (§4.1).
  store.insert("b", make_module(4));
  ASSERT_NE(store.find("b", &loc), nullptr);
  EXPECT_EQ(loc, ModuleLocation::kHostMemory);
  EXPECT_NE(store.find("a"), nullptr);
  EXPECT_EQ(store.stats().evictions, 0u);
}

TEST(ModuleStore, FindBumpsRecency) {
  // No host tier: the store must evict within the device tier, and LRU
  // order decides the victim.
  ModuleStore store(module_bytes(4) * 2, /*host=*/1);
  store.insert("a", make_module(4));
  store.insert("b", make_module(4));
  // Touch "a" so "b" becomes the LRU victim.
  (void)store.find("a");
  store.insert("c", make_module(4));
  EXPECT_NE(store.find("a"), nullptr);
  EXPECT_EQ(store.find("b"), nullptr);
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(ModuleStore, PinnedEntriesSurviveEviction) {
  ModuleStore store(module_bytes(4) * 2, /*host=*/1);
  store.insert("sys", make_module(4));
  ASSERT_TRUE(store.pin("sys"));
  EXPECT_TRUE(store.is_pinned("sys"));
  store.insert("b", make_module(4));
  store.insert("c", make_module(4));  // must evict b, not pinned sys
  EXPECT_NE(store.find("sys"), nullptr);
  EXPECT_EQ(store.find("b"), nullptr);
  EXPECT_NE(store.find("c"), nullptr);

  ASSERT_TRUE(store.unpin("sys"));
  store.insert("d", make_module(4));
  // Either sys or c got evicted; the store stays within capacity.
  EXPECT_LE(store.usage(ModuleLocation::kDeviceMemory).used_bytes,
            module_bytes(4) * 2);
  EXPECT_FALSE(store.pin("ghost"));
}

TEST(ModuleStore, AllPinnedMeansInsertionFailsLoudly) {
  ModuleStore store(module_bytes(4), 1);
  store.insert("sys", make_module(4));
  store.pin("sys");
  EXPECT_THROW(store.insert("b", make_module(4)), CacheError);
  EXPECT_NE(store.find("sys"), nullptr);
}

TEST(ModuleStore, PromoteMovesBetweenTiers) {
  // Device fits one module; the second spills to host.
  ModuleStore store(module_bytes(4), 0);
  store.insert("hot", make_module(4));
  store.insert("cold", make_module(4));
  ModuleLocation loc;
  ASSERT_NE(store.find("cold", &loc), nullptr);
  EXPECT_EQ(loc, ModuleLocation::kHostMemory);

  // Promoting cold displaces hot, which demotes to host (nothing is lost).
  ASSERT_TRUE(store.promote("cold", ModuleLocation::kDeviceMemory));
  ASSERT_NE(store.find("cold", &loc), nullptr);
  EXPECT_EQ(loc, ModuleLocation::kDeviceMemory);
  ASSERT_NE(store.find("hot", &loc), nullptr);
  EXPECT_EQ(loc, ModuleLocation::kHostMemory);
  EXPECT_EQ(store.stats().promotions, 1u);
  EXPECT_EQ(store.stats().demotions, 1u);
  EXPECT_EQ(store.stats().evictions, 0u);

  // No-op promote succeeds without a new promotion.
  ASSERT_TRUE(store.promote("cold", ModuleLocation::kDeviceMemory));
  EXPECT_EQ(store.stats().promotions, 1u);
  EXPECT_FALSE(store.promote("ghost", ModuleLocation::kDeviceMemory));
}

TEST(ModuleStore, PromoteRespectsPinsInTargetTier) {
  ModuleStore store(module_bytes(4), 0);
  store.insert("pinned", make_module(4));
  store.pin("pinned");
  store.insert("other", make_module(4));  // spills to host
  EXPECT_FALSE(store.promote("other", ModuleLocation::kDeviceMemory));
  ModuleLocation loc;
  ASSERT_NE(store.find("pinned", &loc), nullptr);
  EXPECT_EQ(loc, ModuleLocation::kDeviceMemory);
}

TEST(ModuleStore, ClearReleasesEverything) {
  ModuleStore store(0, 0);
  store.insert("a", make_module(4));
  store.insert("b", make_module(8));
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.usage(ModuleLocation::kDeviceMemory).used_bytes, 0u);
  EXPECT_EQ(store.usage(ModuleLocation::kHostMemory).used_bytes, 0u);
}

// Engine-level: union-sibling prefetch pulls alternatives into the device
// tier after a serve that used one member.
TEST(EnginePrefetch, UnionSiblingsArePromoted) {
  AccuracyWorkload workload(7);
  Model model = make_induction_model({workload.vocab().size(), 256});

  const char* schema = R"(
    <schema name="u">
      <union>
        <module name="p0">w00 q05 a10 . w01 w02 w03 w04 w05 w06</module>
        <module name="p1">w07 q05 a11 . w08 w09 w10 w11 w12 w13</module>
        <module name="p2">w14 q05 a12 . w15 w16 w17 w18 w19 w20</module>
      </union>
    </schema>)";

  // Device tier fits ~one module, so the others start on the host.
  const size_t one_module =
      static_cast<size_t>(12) * model.kv_bytes_per_token();
  EngineConfig cfg;
  // Capacity math assumes fp32 module bytes; pin the precision so a q8
  // default (PC_KV_FORMAT=q8) doesn't fit every sibling on-device.
  cfg.precision = StorePrecision::kFp32;
  cfg.device_capacity_bytes = one_module;
  cfg.prefetch_union_siblings = true;
  PromptCacheEngine engine(model, workload.tokenizer(), cfg);
  engine.load_schema(schema);

  GenerateOptions opts;
  opts.max_new_tokens = 2;
  opts.stop_tokens = {workload.stop_token()};
  (void)engine.serve(R"(<prompt schema="u"><p1/> question: q05</prompt>)",
                     opts);
  EXPECT_GT(engine.stats().sibling_prefetches, 0u);

  // A sibling now sits in device memory, so serving it pays no host bytes.
  const ServeResult r2 = engine.serve(
      R"(<prompt schema="u"><p2/> question: q05</prompt>)", opts);
  EXPECT_EQ(r2.ttft.bytes_from_host, 0u);
}

TEST(EnginePin, PinnedSystemModuleSurvivesPressure) {
  AccuracyWorkload workload(7);
  Model model = make_induction_model({workload.vocab().size(), 256});
  const size_t one_module =
      static_cast<size_t>(10) * model.kv_bytes_per_token();
  EngineConfig cfg;
  cfg.device_capacity_bytes = 2 * one_module;
  cfg.host_capacity_bytes = 1;
  cfg.eager_encode = false;
  PromptCacheEngine engine(model, workload.tokenizer(), cfg);
  engine.load_schema(R"(
    <schema name="p">
      <module name="sys">w00 w01 q05 a10 a11 . w02</module>
      <module name="d1">w03 q06 a12 . w04 w05</module>
      <module name="d2">w06 q07 a13 . w07 w08</module>
    </schema>)");
  engine.pin_module("p", "sys");

  GenerateOptions opts;
  opts.max_new_tokens = 3;
  opts.stop_tokens = {workload.stop_token()};
  (void)engine.serve(R"(<prompt schema="p"><sys/><d1/> question: q06</prompt>)",
                     opts);
  (void)engine.serve(R"(<prompt schema="p"><sys/><d2/> question: q07</prompt>)",
                     opts);
  // Through all the churn, the pinned system module was never re-encoded:
  // encodes = sys + d1 + d2 + at most one thrash re-encode of d1/d2.
  EXPECT_TRUE(engine.store().is_pinned("p::sys"));
  const ServeResult r = engine.serve(
      R"(<prompt schema="p"><sys/> question: q05</prompt>)", opts);
  EXPECT_EQ(r.text, "a10 a11");
}

}  // namespace
}  // namespace pc
