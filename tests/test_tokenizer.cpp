// Unit tests for vocabulary, tokenizer, and chat templates.
#include <gtest/gtest.h>

#include "tokenizer/chat_template.h"
#include "tokenizer/tokenizer.h"
#include "tokenizer/vocab.h"

namespace pc {
namespace {

TEST(Vocab, LayoutWithByteFallback) {
  const Vocab v = Vocab::from_pieces({"hello", "world"});
  EXPECT_TRUE(v.has_byte_fallback());
  EXPECT_EQ(v.first_piece_id(), Vocab::kNumSpecial + 256);
  EXPECT_EQ(v.piece_count(), 2);
  EXPECT_EQ(v.piece(Vocab::kUnk), "<unk>");
  EXPECT_EQ(v.piece(Vocab::kBos), "<s>");
  EXPECT_EQ(v.piece(v.byte_token('A')), "<0x41>");
  EXPECT_EQ(*v.find_piece("hello"), v.first_piece_id());
  EXPECT_FALSE(v.find_piece("missing").has_value());
}

TEST(Vocab, ClosedVocabHasNoByteBlock) {
  const Vocab v = Vocab::from_pieces({"a", "b"}, /*byte_fallback=*/false);
  EXPECT_FALSE(v.has_byte_fallback());
  EXPECT_EQ(v.first_piece_id(), Vocab::kNumSpecial);
  EXPECT_EQ(v.size(), Vocab::kNumSpecial + 2);
  EXPECT_THROW(v.byte_token('A'), ContractViolation);
}

TEST(Vocab, DeduplicatesPieces) {
  const Vocab v = Vocab::from_pieces({"x", "y", "x"}, false);
  EXPECT_EQ(v.piece_count(), 2);
}

TEST(Vocab, BasicEnglishIsUsable) {
  const Vocab& v = Vocab::basic_english();
  EXPECT_TRUE(v.find_piece("the").has_value());
  EXPECT_TRUE(v.find_piece(".").has_value());
  EXPECT_GT(v.piece_count(), 300);
}

TEST(Tokenizer, PreTokenizeSplitsWordsAndPunct) {
  const auto pieces = Tokenizer::pre_tokenize("Hello, world! ok");
  EXPECT_EQ(pieces, (std::vector<std::string>{"Hello", ",", "world", "!",
                                              "ok"}));
}

TEST(Tokenizer, PreTokenizeAbsorbsTrailingColon) {
  const auto pieces = Tokenizer::pre_tokenize("question: q05");
  EXPECT_EQ(pieces, (std::vector<std::string>{"question:", "q05"}));
}

TEST(Tokenizer, EncodeDecodeRoundTripInVocab) {
  const Tokenizer tok(Vocab::basic_english());
  const std::string text = "the cache can help people work";
  EXPECT_EQ(tok.decode(tok.encode(text)), text);
}

TEST(Tokenizer, ByteFallbackRoundTripsUnknownWords) {
  const Tokenizer tok(Vocab::basic_english());
  const auto ids = tok.encode("the zyxq");
  // "zyxq" must be encoded as 4 byte tokens.
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(tok.decode(ids), "the zyxq");
}

TEST(Tokenizer, ClosedVocabMapsUnknownToUnk) {
  const Vocab v = Vocab::from_pieces({"known"}, false);
  const Tokenizer tok(v);
  const auto ids = tok.encode("known mystery");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], v.first_piece_id());
  EXPECT_EQ(ids[1], Vocab::kUnk);
}

TEST(Tokenizer, WhitespaceRunsCollapse) {
  const Tokenizer tok(Vocab::basic_english());
  EXPECT_EQ(tok.encode("a  \n\t b"), tok.encode("a b"));
}

TEST(Tokenizer, DecodeSkipsSpecialTokens) {
  const Tokenizer tok(Vocab::basic_english());
  std::vector<TokenId> ids = {Vocab::kBos};
  const auto word_ids = tok.encode("help");
  ids.insert(ids.end(), word_ids.begin(), word_ids.end());
  ids.push_back(Vocab::kEos);
  EXPECT_EQ(tok.decode(ids), "help");
}

TEST(Tokenizer, PunctuationAttachesOnDecode) {
  const Tokenizer tok(Vocab::basic_english());
  const std::string text = "go , then stop .";
  EXPECT_EQ(tok.decode(tok.encode(text)), "go, then stop.");
}

TEST(ChatTemplate, PlainWrapsWithRoleLabels) {
  const ChatTemplate t(TemplateStyle::kPlain);
  EXPECT_EQ(t.render(ChatRole::kUser, "hi"), "user : hi\n");
}

TEST(ChatTemplate, Llama2UsesInstMarkers) {
  const ChatTemplate t(TemplateStyle::kLlama2);
  const auto w = t.wrap(ChatRole::kUser);
  EXPECT_EQ(w.prefix, "[INST] ");
  EXPECT_EQ(w.suffix, " [/INST] ");
  EXPECT_EQ(t.wrap(ChatRole::kSystem).prefix, "<<SYS>> ");
}

TEST(ChatTemplate, ChatMLAndFalconStyles) {
  const ChatTemplate chatml(TemplateStyle::kChatML);
  EXPECT_NE(chatml.render(ChatRole::kAssistant, "x").find("<|im_start|>"),
            std::string::npos);
  const ChatTemplate falcon(TemplateStyle::kFalcon);
  EXPECT_EQ(falcon.render(ChatRole::kAssistant, "x"), "Falcon : x\n");
}

TEST(ChatTemplate, RenderIsPrefixBodySuffix) {
  for (TemplateStyle style :
       {TemplateStyle::kPlain, TemplateStyle::kLlama2, TemplateStyle::kChatML,
        TemplateStyle::kFalcon}) {
    const ChatTemplate t(style);
    for (ChatRole role :
         {ChatRole::kSystem, ChatRole::kUser, ChatRole::kAssistant}) {
      const auto w = t.wrap(role);
      EXPECT_EQ(t.render(role, "BODY"), w.prefix + "BODY" + w.suffix);
    }
  }
}

}  // namespace
}  // namespace pc
