// Round-trip tests for the canonical PML writer: parse(write(parse(x)))
// must reproduce the layout exactly.
#include <gtest/gtest.h>

#include "pml/prompt_program.h"
#include "pml/writer.h"
#include "tokenizer/tokenizer.h"

namespace pc::pml {
namespace {

class WriterTest : public ::testing::Test {
 protected:
  WriterTest()
      : tokenizer_(Vocab::basic_english()), plain_(TemplateStyle::kPlain) {}

  Schema parse(const std::string& pml) {
    return Schema::parse(pml, tokenizer_, plain_);
  }

  void expect_same_layout(const Schema& a, const Schema& b) {
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.modules.size(), b.modules.size());
    for (size_t i = 0; i < a.modules.size(); ++i) {
      const ModuleNode& ma = a.modules[i];
      const ModuleNode& mb = b.modules[i];
      EXPECT_EQ(ma.name, mb.name);
      EXPECT_EQ(ma.anonymous, mb.anonymous);
      EXPECT_EQ(ma.parent, mb.parent);
      EXPECT_EQ(ma.union_id, mb.union_id);
      EXPECT_EQ(ma.start_pos, mb.start_pos);
      EXPECT_EQ(ma.end_pos, mb.end_pos);
      ASSERT_EQ(ma.params.size(), mb.params.size());
      for (size_t p = 0; p < ma.params.size(); ++p) {
        EXPECT_EQ(ma.params[p].name, mb.params[p].name);
        EXPECT_EQ(ma.params[p].max_len, mb.params[p].max_len);
        EXPECT_EQ(ma.params[p].start_pos, mb.params[p].start_pos);
      }
    }
    ASSERT_EQ(a.unions.size(), b.unions.size());
    for (size_t u = 0; u < a.unions.size(); ++u) {
      EXPECT_EQ(a.unions[u].members, b.unions[u].members);
      EXPECT_EQ(a.unions[u].start_pos, b.unions[u].start_pos);
      EXPECT_EQ(a.unions[u].end_pos, b.unions[u].end_pos);
    }
    EXPECT_EQ(a.total_positions, b.total_positions);
  }

  Tokenizer tokenizer_;
  ChatTemplate plain_;
};

TEST_F(WriterTest, SimpleSchemaRoundTrips) {
  const Schema original = parse(R"(
    <schema name="s">
      you are a helper
      <module name="doc">one two three</module>
      <module name="tail">four five</module>
    </schema>)");
  const Schema rebuilt = parse(write_schema(original));
  expect_same_layout(original, rebuilt);
}

TEST_F(WriterTest, ParamsUnionsAndNestingRoundTrip) {
  const Schema original = parse(R"(
    <schema name="complex">
      lead text
      <module name="outer">
        intro
        <param name="arg" len="4"/>
        <module name="inner">nested body</module>
        <union>
          <module name="u1">first</module>
          <module name="u2">second choice here</module>
        </union>
        outro
      </module>
      <union>
        <module name="t1">top one</module>
        <module name="t2">top two</module>
      </union>
    </schema>)");
  const Schema rebuilt = parse(write_schema(original));
  expect_same_layout(original, rebuilt);
  // A second round trip is a fixed point.
  EXPECT_EQ(write_schema(original), write_schema(rebuilt));
}

TEST_F(WriterTest, EscapedTextSurvives) {
  const Schema original = parse(
      "<schema name=\"esc\"><module name=\"m\">a &lt; b &amp; c</module>"
      "</schema>");
  const Schema rebuilt = parse(write_schema(original));
  EXPECT_EQ(rebuilt.module(rebuilt.find_module("m")).pieces[0].text,
            "a < b & c");
  expect_same_layout(original, rebuilt);
}

TEST_F(WriterTest, CompiledPromptProgramRoundTrips) {
  PromptProgram prog("travel");
  prog.text("you are a travel agent");
  prog.if_block("plan", [](BlockBuilder& b) {
    b.text("a trip of");
    b.param("days", 3);
    b.choose({{"miami", "the beach"}, {"maui", "the island"}});
  });
  const Schema original = parse(prog.compile());
  const Schema rebuilt = parse(write_schema(original));
  expect_same_layout(original, rebuilt);
}

}  // namespace
}  // namespace pc::pml
