// Integration tests for the Prompt Cache engine: PML in, generated text
// out, validated against the KV-Cache baseline, a block-masked prefill
// reference, and planted ground truth via the induction model.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/engine.h"
#include "eval/workload.h"
#include "model/induction.h"
#include "tensor/ops.h"

namespace pc {
namespace {

// Shared fixture: induction model sized for the accuracy workload's
// vocabulary, so generated answers are semantically checkable.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : workload_(7),
        model_(make_induction_model(
            {workload_.vocab().size(), 256, 24.0f, 24.0f})),
        engine_(model_, workload_.tokenizer()) {}

  GenerateOptions answer_options(int max_tokens = 6) const {
    GenerateOptions o;
    o.max_new_tokens = max_tokens;
    o.stop_tokens = {workload_.stop_token()};
    return o;
  }

  AccuracyWorkload workload_;
  Model model_;
  PromptCacheEngine engine_;
};

TEST_F(EngineTest, RetrievesFactFromCachedModule) {
  engine_.load_schema(R"(
    <schema name="s">
      <module name="doc1">w00 w01 q05 a10 a11 . w02 w03</module>
      <module name="doc2">w04 w05 q06 a12 a13 . w06</module>
    </schema>)");

  const ServeResult r = engine_.serve(R"(
    <prompt schema="s"><doc1/><doc2/> question: q05</prompt>)",
                                      answer_options());
  EXPECT_EQ(r.text, "a10 a11");
  EXPECT_GT(r.ttft.cached_tokens, 0);
  EXPECT_EQ(r.ttft.uncached_tokens, 2);  // "question:" + key
}

TEST_F(EngineTest, CachedOutputMatchesBaselineOnSameContent) {
  engine_.load_schema(R"(
    <schema name="s">
      <module name="doc1">w00 w01 q05 a10 a11 . w02 w03</module>
      <module name="doc2">w04 w05 q06 a12 a13 . w06</module>
    </schema>)");
  const std::string prompt =
      R"(<prompt schema="s"><doc1/><doc2/> question: q06</prompt>)";

  const ServeResult cached = engine_.serve(prompt, answer_options());
  const ServeResult baseline = engine_.serve_baseline(prompt, answer_options());
  EXPECT_EQ(cached.text, "a12 a13");
  EXPECT_EQ(baseline.text, "a12 a13");
}

// Single module + suffix: cached inference is bit-identical to the
// baseline, because module positions start at 0 and the suffix is
// contiguous — there is no masking difference with only one block.
TEST_F(EngineTest, SingleModuleCachedEqualsBaselineBitwise) {
  // Bitwise fp32 regression guard: pinned to fp32 so the equality holds
  // even when the suite runs with PC_KV_FORMAT=q8.
  EngineConfig fp32;
  fp32.precision = StorePrecision::kFp32;
  PromptCacheEngine engine(model_, workload_.tokenizer(), fp32);
  engine.load_schema(R"(
    <schema name="one">
      <module name="doc">w00 w01 q05 a10 a11 . w02 w03 w04</module>
    </schema>)");
  const std::string prompt =
      R"(<prompt schema="one"><doc/> question: q05</prompt>)";

  const pml::PromptBinding binding = engine.bind(prompt);

  KVCache cached_seq = model_.make_cache();
  TtftBreakdown ttft;
  const Tensor cached_logits =
      engine.assemble_and_prefill(binding, cached_seq, &ttft);

  // Baseline prefill of the same tokens.
  std::vector<int> pos(binding.baseline_tokens.size());
  std::iota(pos.begin(), pos.end(), 0);
  KVCache base_seq = model_.make_cache();
  const Tensor base_logits =
      model_.forward(binding.baseline_tokens, pos, base_seq);

  ASSERT_EQ(cached_seq.size(), base_seq.size());
  EXPECT_EQ(max_abs_diff(cached_logits, base_logits), 0.0f);
  for (int l = 0; l < model_.config().n_layers; ++l) {
    for (int t = 0; t < cached_seq.size(); ++t) {
      ASSERT_EQ(cached_seq.pos_id(t), base_seq.pos_id(t));
      for (int e = 0; e < model_.config().kv_dim(); ++e) {
        ASSERT_EQ(cached_seq.k_row(l, t)[e], base_seq.k_row(l, t)[e]);
        ASSERT_EQ(cached_seq.v_row(l, t)[e], base_seq.v_row(l, t)[e]);
      }
    }
  }
}

// Multi-module: cached inference equals a single blocked prefill with a
// block-diagonal mask over the modules — bitwise.
TEST_F(EngineTest, MultiModuleCachedEqualsBlockedPrefillBitwise) {
  // Bitwise fp32 regression guard: pinned to fp32 so the equality holds
  // even when the suite runs with PC_KV_FORMAT=q8.
  EngineConfig fp32;
  fp32.precision = StorePrecision::kFp32;
  PromptCacheEngine engine(model_, workload_.tokenizer(), fp32);
  engine.load_schema(R"(
    <schema name="s">
      <module name="doc1">w00 w01 q05 a10 a11 . w02</module>
      <module name="doc2">w04 w05 q06 a12 a13 . w06</module>
      <module name="doc3">w07 w08 q07 a14 a15 . w09</module>
    </schema>)");
  const std::string prompt =
      R"(<prompt schema="s"><doc1/><doc2/><doc3/> question: q07</prompt>)";
  const pml::PromptBinding binding = engine.bind(prompt);

  KVCache cached_seq = model_.make_cache();
  const Tensor cached_logits =
      engine.assemble_and_prefill(binding, cached_seq, nullptr);

  // Reference: flatten modules + suffix with block ids and layout positions.
  std::vector<TokenId> tokens;
  std::vector<int> pos;
  std::vector<int> blocks;
  int block = 0;
  for (int mi : binding.modules) {
    ++block;
    for (const pml::TokenRun& run : binding.schema->module_own_runs(mi)) {
      for (size_t i = 0; i < run.tokens.size(); ++i) {
        tokens.push_back(run.tokens[i]);
        pos.push_back(run.start_pos + static_cast<int>(i));
        blocks.push_back(block);
      }
    }
  }
  for (const pml::BoundText& t : binding.texts) {
    for (size_t i = 0; i < t.tokens.size(); ++i) {
      tokens.push_back(t.tokens[i]);
      pos.push_back(t.start_pos + static_cast<int>(i));
      blocks.push_back(Model::kGlobalBlock);
    }
  }

  KVCache ref_seq = model_.make_cache();
  const Tensor ref_logits =
      model_.forward_blocked(tokens, pos, blocks, ref_seq);

  ASSERT_EQ(cached_seq.size(), ref_seq.size());
  EXPECT_EQ(max_abs_diff(cached_logits, ref_logits), 0.0f);
  for (int l = 0; l < model_.config().n_layers; ++l) {
    for (int t = 0; t < cached_seq.size(); ++t) {
      for (int e = 0; e < model_.config().kv_dim(); ++e) {
        ASSERT_EQ(cached_seq.k_row(l, t)[e], ref_seq.k_row(l, t)[e]);
        ASSERT_EQ(cached_seq.v_row(l, t)[e], ref_seq.v_row(l, t)[e]);
      }
    }
  }
}

TEST_F(EngineTest, ParameterizedModuleSubstitutesArgument) {
  // The fact's values arrive as a runtime argument replacing the <unk>
  // placeholders; induction must retrieve them.
  engine_.load_schema(R"(
    <schema name="p">
      <module name="fact">w00 w01 q05 <param name="vals" len="4"/> w02</module>
    </schema>)");

  const ServeResult r = engine_.serve(R"(
    <prompt schema="p"><fact vals="a20 a21 ."/> question: q05</prompt>)",
                                      answer_options());
  EXPECT_EQ(r.text, "a20 a21");
}

TEST_F(EngineTest, ArgumentShorterThanLenLeavesGap) {
  engine_.load_schema(R"(
    <schema name="p2">
      <module name="fact">q05 <param name="vals" len="6"/> w02 q06 a13 .</module>
    </schema>)");
  // Supply only 3 of 6 tokens; the trailing positions stay empty and later
  // content is still retrievable.
  const ServeResult r = engine_.serve(R"(
    <prompt schema="p2"><fact vals="a20 a21 ."/> question: q06</prompt>)",
                                      answer_options());
  EXPECT_EQ(r.text, "a13");
}

TEST_F(EngineTest, OverlongArgumentRejected) {
  engine_.load_schema(R"(
    <schema name="p3">
      <module name="fact">q05 <param name="vals" len="2"/></module>
    </schema>)");
  EXPECT_THROW(engine_.serve(R"(
    <prompt schema="p3"><fact vals="a20 a21 a22"/> question: q05</prompt>)"),
               SchemaError);
}

TEST_F(EngineTest, ScaffoldRestoresStraddlingFact) {
  const char* schema = R"(
    <schema name="sc">
      <module name="parta">w00 w01 q05</module>
      <module name="partb">a10 a11 . w02 w03</module>
    </schema>)";
  const char* prompt =
      R"(<prompt schema="sc"><parta/><partb/> question: q05</prompt>)";

  // Without a scaffold the straddling fact is lost under caching...
  engine_.load_schema(schema);
  const ServeResult without = engine_.serve(prompt, answer_options());
  EXPECT_NE(without.text, "a10 a11");

  // ...but the baseline retrieves it...
  const ServeResult baseline = engine_.serve_baseline(prompt, answer_options());
  EXPECT_EQ(baseline.text, "a10 a11");

  // ...and so does cached inference once the two parts share a scaffold.
  PromptCacheEngine engine2(model_, workload_.tokenizer());
  engine2.load_schema(schema);
  engine2.add_scaffold("sc", {"parta", "partb"});
  const ServeResult with = engine2.serve(prompt, answer_options());
  EXPECT_EQ(with.text, "a10 a11");
  EXPECT_EQ(engine2.stats().scaffolds_encoded, 1u);
}

// §3.1: "these masks may even introduce beneficial inductive biases by
// effectively filtering out irrelevant information." Constructed here: one
// document *ends* with the queried key and the next document *begins* with
// an unrelated value token. The baseline's full attention forms a spurious
// cross-document previous-token link (key -> unrelated value) that ties
// with the real fact and corrupts the answer; module-masked encoding severs
// exactly that link, so cached inference answers correctly.
TEST_F(EngineTest, MaskingFiltersCrossDocumentNoise) {
  engine_.load_schema(R"(
    <schema name="noise">
      <module name="chatter">w00 w01 w02 q05</module>
      <module name="junk">a01 a02 w03 w04</module>
      <module name="facts">w05 q05 a30 a31 . w06</module>
    </schema>)");
  const char* prompt =
      R"(<prompt schema="noise"><chatter/><junk/><facts/> question: q05</prompt>)";

  const ServeResult cached = engine_.serve(prompt, answer_options());
  const ServeResult baseline = engine_.serve_baseline(prompt, answer_options());
  EXPECT_EQ(cached.text, "a30 a31");       // masking filtered the noise
  EXPECT_NE(baseline.text, "a30 a31");     // spurious q05 -> a01 link wins
}

TEST_F(EngineTest, UnionMembersAreExclusiveAndServeCorrectly) {
  engine_.load_schema(R"(
    <schema name="u">
      <union>
        <module name="en">w10 q05 a10 a11 .</module>
        <module name="zh">w11 q05 a12 a13 .</module>
      </union>
      <module name="tail">w00 w01</module>
    </schema>)");

  const ServeResult en = engine_.serve(
      R"(<prompt schema="u"><en/><tail/> question: q05</prompt>)",
      answer_options());
  EXPECT_EQ(en.text, "a10 a11");

  const ServeResult zh = engine_.serve(
      R"(<prompt schema="u"><zh/><tail/> question: q05</prompt>)",
      answer_options());
  EXPECT_EQ(zh.text, "a12 a13");

  EXPECT_THROW(
      engine_.serve(R"(<prompt schema="u"><en/><zh/> question: q05</prompt>)"),
      SchemaError);
}

TEST_F(EngineTest, SecondServeReusesEncodedModules) {
  engine_.load_schema(R"(
    <schema name="r">
      <module name="doc">w00 q05 a10 . w01</module>
    </schema>)");
  const std::string prompt =
      R"(<prompt schema="r"><doc/> question: q05</prompt>)";

  (void)engine_.serve(prompt, answer_options());
  const uint64_t encoded_after_first = engine_.stats().modules_encoded;
  const ServeResult second = engine_.serve(prompt, answer_options());
  EXPECT_EQ(engine_.stats().modules_encoded, encoded_after_first);
  EXPECT_EQ(second.text, "a10");
}

TEST_F(EngineTest, FullyCachedPromptStillProducesAToken) {
  engine_.load_schema(R"(
    <schema name="f">
      <module name="doc">w00 w01 q05 a10 . w02</module>
    </schema>)");
  const ServeResult r =
      engine_.serve(R"(<prompt schema="f"><doc/></prompt>)", answer_options(2));
  EXPECT_EQ(r.ttft.uncached_tokens, 1);  // the <s> kickoff
}

TEST_F(EngineTest, TinyDeviceTierSpillsToHostAndStillServes) {
  EngineConfig cfg;
  cfg.device_capacity_bytes = 1;  // nothing fits on-device
  PromptCacheEngine engine(model_, workload_.tokenizer(), cfg);
  engine.load_schema(R"(
    <schema name="t">
      <module name="doc">w00 q05 a10 a11 . w01</module>
    </schema>)");
  const ServeResult r = engine.serve(
      R"(<prompt schema="t"><doc/> question: q05</prompt>)", answer_options());
  EXPECT_EQ(r.text, "a10 a11");
  EXPECT_GT(r.ttft.bytes_from_host, 0u);
  EXPECT_EQ(r.ttft.bytes_from_device, 0u);
}

TEST_F(EngineTest, EvictionThrashStillServesCorrectly) {
  // Capacities hold roughly one module: serving two forces re-encodes.
  const size_t one_module = static_cast<size_t>(8) *
                            model_.kv_bytes_per_token();
  EngineConfig cfg;
  // Capacity math assumes fp32 module bytes; pin the precision so a q8
  // default (PC_KV_FORMAT=q8) doesn't make everything fit.
  cfg.precision = StorePrecision::kFp32;
  cfg.device_capacity_bytes = one_module;
  cfg.host_capacity_bytes = 1;
  PromptCacheEngine engine(model_, workload_.tokenizer(), cfg);
  engine.load_schema(R"(
    <schema name="e">
      <module name="d1">w00 q05 a10 a11 . w01</module>
      <module name="d2">w02 q06 a12 a13 . w03</module>
    </schema>)");
  const ServeResult r = engine.serve(
      R"(<prompt schema="e"><d1/><d2/> question: q06</prompt>)",
      answer_options());
  EXPECT_EQ(r.text, "a12 a13");
  EXPECT_GT(engine.stats().thrash_reencodes + engine.store().stats().evictions,
            0u);
}

class EnginePrecisionTest
    : public EngineTest,
      public ::testing::WithParamInterface<StorePrecision> {};

TEST_P(EnginePrecisionTest, ReducedPrecisionStoragePreservesRetrieval) {
  EngineConfig cfg;
  cfg.precision = GetParam();
  PromptCacheEngine engine(model_, workload_.tokenizer(), cfg);
  engine.load_schema(R"(
    <schema name="h">
      <module name="doc">w00 w01 q05 a10 a11 . w02</module>
    </schema>)");
  const ServeResult r = engine.serve(
      R"(<prompt schema="h"><doc/> question: q05</prompt>)", answer_options());
  EXPECT_EQ(r.text, "a10 a11");
  // Footprint ordering: fp16 is half of fp32, q8 roughly a quarter.
  EXPECT_GT(r.ttft.bytes_from_device + r.ttft.bytes_from_host, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, EnginePrecisionTest,
                         ::testing::Values(StorePrecision::kFp32,
                                           StorePrecision::kFp16,
                                           StorePrecision::kQ8,
                                           StorePrecision::kQ4),
                         [](const auto& info) {
                           switch (info.param) {
                             case StorePrecision::kFp32: return "Fp32";
                             case StorePrecision::kFp16: return "Fp16";
                             case StorePrecision::kQ8: return "Q8";
                             case StorePrecision::kQ4: return "Q4";
                           }
                           return "Unknown";
                         });

TEST_F(EngineTest, PrecisionFootprintOrdering) {
  const char* schema = R"(
    <schema name="fp">
      <module name="doc">w00 w01 q05 a10 a11 . w02 w03 w04 w05</module>
    </schema>)";
  size_t bytes[4];
  const StorePrecision precisions[] = {StorePrecision::kFp32,
                                       StorePrecision::kFp16,
                                       StorePrecision::kQ8,
                                       StorePrecision::kQ4};
  for (int i = 0; i < 4; ++i) {
    EngineConfig cfg;
    cfg.precision = precisions[i];
    PromptCacheEngine engine(model_, workload_.tokenizer(), cfg);
    engine.load_schema(schema);
    bytes[i] = engine.store().usage(ModuleLocation::kDeviceMemory).used_bytes;
  }
  EXPECT_EQ(bytes[1], bytes[0] / 2);       // fp16 halves fp32
  EXPECT_LT(bytes[2], bytes[1] * 2 / 3);   // q8 well below fp16
  EXPECT_GT(bytes[2], bytes[0] / 5);       // but not free (scales)
  EXPECT_LT(bytes[3], bytes[2] * 3 / 4);   // q4 well below q8
  EXPECT_GT(bytes[3], bytes[0] / 8);       // but above pure 4-bit (scales)
}

// Runtime module updates (§1: "or even update some prompt modules during
// the runtime"): re-loading a schema must invalidate stale encoded states.
TEST_F(EngineTest, ReloadingASchemaRefreshesModuleStates) {
  engine_.load_schema(R"(
    <schema name="live">
      <module name="doc">w00 q05 a10 a11 . w01</module>
    </schema>)");
  const char* prompt = R"(<prompt schema="live"><doc/> question: q05</prompt>)";
  EXPECT_EQ(engine_.serve(prompt, answer_options()).text, "a10 a11");

  // The document changes: same module name, new fact.
  engine_.load_schema(R"(
    <schema name="live">
      <module name="doc">w00 q05 a14 a15 . w01</module>
    </schema>)");
  EXPECT_EQ(engine_.serve(prompt, answer_options()).text, "a14 a15");
}

TEST_F(EngineTest, ReloadingASchemaDropsItsScaffolds) {
  const char* v1 = R"(
    <schema name="sc2">
      <module name="pa">w00 w01 q05</module>
      <module name="pb">a10 a11 . w02</module>
    </schema>)";
  engine_.load_schema(v1);
  engine_.add_scaffold("sc2", {"pa", "pb"});
  const char* prompt = R"(<prompt schema="sc2"><pa/><pb/> question: q05</prompt>)";
  EXPECT_EQ(engine_.serve(prompt, answer_options()).text, "a10 a11");

  // New version with different content: the old scaffold must not apply.
  engine_.load_schema(R"(
    <schema name="sc2">
      <module name="pa">w00 w01 q05</module>
      <module name="pb">a12 a13 . w02</module>
    </schema>)");
  const ServeResult r = engine_.serve(prompt, answer_options());
  EXPECT_NE(r.text, "a10 a11");  // stale joint states are gone
}

TEST_F(EngineTest, MultipleSchemasServeIndependently) {
  engine_.load_schema(R"(
    <schema name="alpha"><module name="d">w00 q05 a10 . w01</module></schema>)");
  engine_.load_schema(R"(
    <schema name="beta"><module name="d">w02 q05 a12 . w03</module></schema>)");
  EXPECT_EQ(engine_.serve(R"(<prompt schema="alpha"><d/> question: q05</prompt>)",
                          answer_options())
                .text,
            "a10");
  EXPECT_EQ(engine_.serve(R"(<prompt schema="beta"><d/> question: q05</prompt>)",
                          answer_options())
                .text,
            "a12");
}

TEST_F(EngineTest, SchemaTooLargeForModelRejected) {
  // The induction model has max_pos 256; a schema occupying more must be
  // rejected at load time, not fail mid-serve.
  std::string big = "<schema name=\"big\"><module name=\"m\">";
  for (int i = 0; i < 300; ++i) big += "w00 ";
  big += "</module></schema>";
  EXPECT_THROW(engine_.load_schema(big), ContractViolation);
}

TEST_F(EngineTest, FinishReasonsAreReported) {
  engine_.load_schema(R"(
    <schema name="fr">
      <module name="doc">w00 q05 a10 a11 . w01</module>
    </schema>)");
  const char* prompt = R"(<prompt schema="fr"><doc/> question: q05</prompt>)";

  // The answer ends with the "." stop token.
  GenerateOptions stop = answer_options(8);
  EXPECT_EQ(engine_.serve(prompt, stop).finish_reason,
            FinishReason::kStopToken);

  // No stops: generation runs to the length limit.
  GenerateOptions length;
  length.max_new_tokens = 3;
  length.stop_tokens.clear();
  EXPECT_EQ(engine_.serve(prompt, length).finish_reason,
            FinishReason::kLength);

  // A stop sequence on the answer pair.
  GenerateOptions seq = length;
  seq.max_new_tokens = 8;
  seq.stop_sequences = {
      workload_.tokenizer().encode("a10 a11")};
  const ServeResult r = engine_.serve(prompt, seq);
  EXPECT_EQ(r.finish_reason, FinishReason::kStopSequence);
  EXPECT_TRUE(r.tokens.empty());  // the match was the entire output
}

// Cached and baseline paths must assign the same log-probability to the
// reference answer when their states are bitwise equal (single module), and
// similar ones otherwise — the continuous fidelity metric.
TEST_F(EngineTest, ReferenceLogprobMatchesAcrossPaths) {
  engine_.load_schema(R"(
    <schema name="lp">
      <module name="doc">w00 w01 q05 a10 a11 . w02</module>
    </schema>)");
  const char* prompt = R"(<prompt schema="lp"><doc/> question: q05</prompt>)";
  const pml::PromptBinding binding = engine_.bind(prompt);
  const std::vector<TokenId> reference =
      workload_.tokenizer().encode("a10 a11 .");

  KVCache cached = model_.make_cache();
  const Tensor cached_logits =
      engine_.assemble_and_prefill(binding, cached, nullptr);
  const double cached_lp = model_.continuation_logprob(
      cached_logits, reference, binding.next_pos, cached);

  std::vector<int> pos(binding.baseline_tokens.size());
  std::iota(pos.begin(), pos.end(), 0);
  KVCache base = model_.make_cache();
  const Tensor base_logits =
      model_.forward(binding.baseline_tokens, pos, base);
  const double base_lp = model_.continuation_logprob(
      base_logits, reference, static_cast<int>(pos.size()), base);

  EXPECT_NEAR(cached_lp, base_lp, 1e-6);
  EXPECT_LT(cached_lp, 0.0);
  // The induction model's logit margin is ~1 nat per token over a ~180-token
  // vocab: each reference token is the argmax but carries modest probability
  // mass. "Clearly better than uniform" is the meaningful bound.
  const double uniform =
      3.0 * std::log(1.0 / workload_.vocab().size());
  EXPECT_GT(cached_lp, uniform + 2.0);
}

TEST_F(EngineTest, UnknownSchemaAndModuleErrors) {
  EXPECT_THROW(engine_.serve(R"(<prompt schema="nope">x</prompt>)"),
               SchemaError);
  engine_.load_schema(R"(<schema name="k"><module name="m">w00</module></schema>)");
  EXPECT_THROW(engine_.serve(R"(<prompt schema="k"><other/></prompt>)"),
               SchemaError);
}

}  // namespace
}  // namespace pc
