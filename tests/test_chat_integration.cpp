// Engine-level chat-template integration (paper §3.2.3): the same
// role-tagged PML schema serves against every model family, compiled
// through that family's conversation format.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "model/model.h"

namespace pc {
namespace {

constexpr const char* kSchema = R"(
  <schema name="chat">
    <system>you are a helpful city guide</system>
    <user>
      here is the context
      <module name="doc">the market is open every day and people like it</module>
    </user>
  </schema>)";

constexpr const char* kPrompt =
    R"(<prompt schema="chat"><doc/> what should we see ?</prompt>)";

class ChatIntegrationTest : public ::testing::TestWithParam<ArchFamily> {
 protected:
  static ModelConfig config_for(ArchFamily family) {
    const int v = Vocab::basic_english().size();
    switch (family) {
      case ArchFamily::kLlama:
        return ModelConfig::llama_tiny(v, 512);
      case ArchFamily::kMpt:
        return ModelConfig::mpt_tiny(v, 512);
      case ArchFamily::kFalcon:
        return ModelConfig::falcon_tiny(v, 512);
      case ArchFamily::kGpt2:
        return ModelConfig::gpt2_tiny(v, 512);
    }
    return ModelConfig::llama_tiny(v, 512);
  }
};

TEST_P(ChatIntegrationTest, RoleTaggedSchemaServesEndToEnd) {
  const Model model = Model::random(config_for(GetParam()), 33);
  const Tokenizer tokenizer(Vocab::basic_english());
  PromptCacheEngine engine(model, tokenizer);

  const pml::Schema& schema = engine.load_schema(kSchema);
  // Role tags expanded into anonymous modules around the document.
  EXPECT_GE(schema.anonymous_modules.size(), 2u);
  const int doc = schema.find_module("doc");
  ASSERT_NE(doc, -1);
  // Some template text precedes the document module.
  EXPECT_GT(schema.module(doc).start_pos, 0);

  GenerateOptions opts;
  opts.max_new_tokens = 4;
  opts.stop_tokens.clear();
  const ServeResult cached = engine.serve(kPrompt, opts);
  const ServeResult baseline = engine.serve_baseline(kPrompt, opts);

  // The template text is cached (anonymous modules always included).
  EXPECT_GT(cached.ttft.cached_tokens,
            schema.module(doc).own_token_count());
  EXPECT_EQ(cached.prompt_tokens, baseline.prompt_tokens);
  EXPECT_EQ(cached.tokens.size(), 4u);
}

TEST_P(ChatIntegrationTest, TemplateStyleFollowsModelFamily) {
  const ModelConfig config = config_for(GetParam());
  const ChatTemplate tmpl(config.chat_template);
  const std::string rendered = tmpl.render(ChatRole::kUser, "X");
  switch (GetParam()) {
    case ArchFamily::kLlama:
      EXPECT_NE(rendered.find("[INST]"), std::string::npos);
      break;
    case ArchFamily::kMpt:
      EXPECT_NE(rendered.find("<|im_start|>"), std::string::npos);
      break;
    case ArchFamily::kFalcon:
      EXPECT_NE(rendered.find("User"), std::string::npos);
      break;
    case ArchFamily::kGpt2:
      EXPECT_NE(rendered.find("user"), std::string::npos);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ChatIntegrationTest,
                         ::testing::Values(ArchFamily::kLlama,
                                           ArchFamily::kMpt,
                                           ArchFamily::kFalcon,
                                           ArchFamily::kGpt2),
                         [](const auto& info) {
                           switch (info.param) {
                             case ArchFamily::kLlama: return "Llama";
                             case ArchFamily::kMpt: return "Mpt";
                             case ArchFamily::kFalcon: return "Falcon";
                             case ArchFamily::kGpt2: return "Gpt2";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace pc
