// Unit tests for the table formatter used by the benchmark harnesses.
#include <gtest/gtest.h>

#include <sstream>

#include "eval/table.h"

namespace pc {
namespace {

TEST(Table, AlignsColumnsAndPadsShortRows) {
  TablePrinter t("demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name"});  // short row: second cell empty
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("=== demo ==="), std::string::npos);
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| a           | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name |       |"), std::string::npos);
}

TEST(Table, NoHeaderNoTitleStillPrints) {
  TablePrinter t;
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), "| x | y |\n");
}

TEST(Table, FormattingHelpers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::fmt_ms(12.345), "12.35 ms");
  EXPECT_EQ(TablePrinter::fmt_ms(2500.0), "2.50 s");
  EXPECT_EQ(TablePrinter::fmt_times(12.34), "12.3x");
}

}  // namespace
}  // namespace pc
