// Unit tests for the BM25 retriever.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/retriever.h"

namespace pc {
namespace {

Bm25Index small_index() {
  Bm25Index index;
  index.add_document("beach", "the beach city has surf and a warm sea");
  index.add_document("mountain", "the mountain island has a long walk");
  index.add_document("market", "the old market sells food and paper");
  index.finalize();
  return index;
}

TEST(Bm25, RanksLexicalOverlapFirst) {
  const Bm25Index index = small_index();
  const auto results = index.query("where can we surf near the sea", 3);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(index.document_name(results[0].doc), "beach");
}

TEST(Bm25, OmitsZeroOverlapDocuments) {
  const Bm25Index index = small_index();
  const auto results = index.query("surf", 3);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(index.document_name(results[0].doc), "beach");
  EXPECT_TRUE(index.query("zebra quantum", 3).empty());
}

TEST(Bm25, TopKTruncates) {
  const Bm25Index index = small_index();
  // "the" appears in every document.
  EXPECT_EQ(index.query("the", 2).size(), 2u);
  EXPECT_EQ(index.query("the", 10).size(), 3u);
}

TEST(Bm25, IdfOrdering) {
  const Bm25Index index = small_index();
  // "the" (every doc) must have lower idf than "surf" (one doc).
  EXPECT_LT(index.idf("the"), index.idf("surf"));
  EXPECT_DOUBLE_EQ(index.idf("zebra"), 0.0);
  // Hand check: N=3, df=1 -> ln(1 + 2.5/1.5).
  EXPECT_NEAR(index.idf("surf"), std::log(1.0 + 2.5 / 1.5), 1e-12);
  EXPECT_NEAR(index.idf("the"), std::log(1.0 + 0.5 / 3.5), 1e-12);
}

TEST(Bm25, RareTermsBeatCommonOnes) {
  Bm25Index index;
  index.add_document("common", "cat cat cat cat dog");
  index.add_document("rare", "bird");
  index.add_document("other1", "cat fish");
  index.add_document("other2", "cat tree");
  index.finalize();
  // One rare term should outrank saturated common-term matches.
  const auto results = index.query("bird cat", 4);
  ASSERT_GE(results.size(), 2u);
  EXPECT_EQ(index.document_name(results[0].doc), "rare");
}

TEST(Bm25, LengthNormalizationPrefersConciseDocs) {
  Bm25Index index;
  std::string longdoc = "surf";
  for (int i = 0; i < 80; ++i) longdoc += " filler word here";
  index.add_document("long", longdoc);
  index.add_document("short", "surf report");
  index.finalize();
  const auto results = index.query("surf", 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(index.document_name(results[0].doc), "short");
}

TEST(Bm25, QueryIsCaseAndPunctuationInsensitive) {
  const Bm25Index index = small_index();
  const auto a = index.query("SURF!", 1);
  const auto b = index.query("surf", 1);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].doc, b[0].doc);
  EXPECT_DOUBLE_EQ(a[0].score, b[0].score);
}

TEST(Bm25, ContractsEnforced) {
  Bm25Index index;
  EXPECT_THROW(index.finalize(), ContractViolation);  // empty
  index.add_document("a", "words here");
  EXPECT_THROW(index.query("x", 1), ContractViolation);  // not finalized
  index.finalize();
  EXPECT_THROW(index.add_document("b", "late"), ContractViolation);
  EXPECT_THROW(index.query("x", 0), ContractViolation);
  EXPECT_THROW(Bm25Index(0.0, 0.5), ContractViolation);
}

}  // namespace
}  // namespace pc
