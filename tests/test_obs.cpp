// Tests for the observability layer: span tracer (thread-local rings,
// runtime gate, ring wrap, Perfetto export) and the metrics registry
// (family-of-cells aggregation, gauge expiry, Prometheus text).
//
// Trace state is process-global, so every tracer test starts from
// set_tracing(false) + clear_traces() and filters lanes/events by names
// unique to this file.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/export.h"
#include "obs/json_reader.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pc {
namespace {

using obs::JsonReader;
using obs::JsonValue;

size_t total_events(const std::vector<obs::ThreadTrace>& traces) {
  size_t n = 0;
  for (const auto& t : traces) n += t.events.size();
  return n;
}

#if PC_OBS_ENABLED

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing(false);
    obs::clear_traces();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::clear_traces();
  }
};

TEST_F(TracerTest, SpanRecordsNameDurationAndArgs) {
  obs::set_tracing(true);
  {
    PC_SPAN("obs_unit_span", {"request", 42}, {"tokens", 7});
  }
  obs::set_tracing(false);

  const obs::TraceEvent* found = nullptr;
  const auto traces = obs::collect_traces();
  for (const auto& t : traces) {
    for (const auto& e : t.events) {
      if (std::string_view(e.name) == "obs_unit_span") found = &e;
    }
  }
  ASSERT_NE(found, nullptr);
  EXPECT_GE(found->end_ns, found->start_ns);
  EXPECT_STREQ(found->args[0].key, "request");
  EXPECT_EQ(found->args[0].value, 42);
  EXPECT_STREQ(found->args[1].key, "tokens");
  EXPECT_EQ(found->args[1].value, 7);
}

TEST_F(TracerTest, DisabledGateRecordsNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  {
    PC_SPAN("obs_should_not_appear");
    PC_SPAN_NAMED(named, "obs_should_not_appear_either");
    named.set_arg("k", 1);
  }
  EXPECT_EQ(total_events(obs::collect_traces()), 0u);
}

TEST_F(TracerTest, SetArgAttachesMidSpan) {
  obs::set_tracing(true);
  {
    PC_SPAN_NAMED(span, "obs_set_arg_span");
    span.set_arg("late", 99);
  }
  obs::set_tracing(false);
  bool found = false;
  for (const auto& t : obs::collect_traces()) {
    for (const auto& e : t.events) {
      if (std::string_view(e.name) != "obs_set_arg_span") continue;
      found = true;
      EXPECT_STREQ(e.args[0].key, "late");
      EXPECT_EQ(e.args[0].value, 99);
    }
  }
  EXPECT_TRUE(found);
}

// Spans from several threads export to Perfetto JSON that parses, labels
// each lane, and is strictly nested per thread (intervals pairwise nested
// or disjoint — Perfetto's precondition for rendering a span tree).
TEST_F(TracerTest, MultiThreadExportIsValidStrictlyNestedPerfettoJson) {
  constexpr int kThreads = 4;
  obs::set_tracing(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::set_thread_name("obs_lane_" + std::to_string(t));
      for (int i = 0; i < 6; ++i) {
        PC_SPAN("obs_outer", {"i", i});
        PC_SPAN("obs_middle");
        {
          PC_SPAN("obs_inner");
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  obs::set_tracing(false);

  std::ostringstream os;
  obs::export_perfetto_json(os);
  const JsonValue root = JsonReader::parse(os.str());
  ASSERT_TRUE(root.is_object());
  const JsonValue& events = root["traceEvents"];
  ASSERT_TRUE(events.is_array());

  // Lane names and per-tid complete events.
  struct Interval {
    double start, end;
  };
  std::map<int, std::string> lane_names;
  std::map<int, std::vector<Interval>> by_tid;
  std::map<int, int> inner_count;
  for (const JsonValue& e : events.array) {
    const int tid = static_cast<int>(e["tid"].as_number(-1));
    const std::string& ph = e["ph"].as_string();
    if (ph == "M" && e["name"].as_string() == "thread_name") {
      lane_names[tid] = e["args"]["name"].as_string();
    } else if (ph == "X") {
      const double ts = e["ts"].as_number();
      const double dur = e["dur"].as_number();
      EXPECT_GE(dur, 0.0);
      by_tid[tid].push_back({ts, ts + dur});
      if (e["name"].as_string() == "obs_inner") ++inner_count[tid];
    }
  }

  int our_lanes = 0;
  for (const auto& [tid, name] : lane_names) {
    if (name.rfind("obs_lane_", 0) != 0) continue;
    ++our_lanes;
    EXPECT_EQ(inner_count[tid], 6) << "lane " << name;
    const auto& iv = by_tid[tid];
    EXPECT_EQ(iv.size(), 18u) << "lane " << name;  // 3 spans * 6 iterations
    for (size_t a = 0; a < iv.size(); ++a) {
      for (size_t b = a + 1; b < iv.size(); ++b) {
        const bool disjoint =
            iv[a].end <= iv[b].start || iv[b].end <= iv[a].start;
        const bool a_in_b =
            iv[a].start >= iv[b].start && iv[a].end <= iv[b].end;
        const bool b_in_a =
            iv[b].start >= iv[a].start && iv[b].end <= iv[a].end;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "partial overlap on lane " << name;
      }
    }
  }
  EXPECT_EQ(our_lanes, kThreads);
}

TEST_F(TracerTest, RingWrapDropsOldestAndCountsThem) {
  constexpr int kCapacity = 8;
  constexpr int kSpans = 20;
  obs::set_ring_capacity(kCapacity);
  obs::set_tracing(true);
  std::thread writer([] {  // fresh thread => fresh ring at the small size
    obs::set_thread_name("obs_wrap_lane");
    for (int i = 0; i < kSpans; ++i) {
      PC_SPAN("obs_wrap_span", {"i", i});
    }
  });
  writer.join();
  obs::set_tracing(false);
  obs::set_ring_capacity(65536);  // restore for rings created later

  const obs::ThreadTrace* lane = nullptr;
  const auto traces = obs::collect_traces();
  for (const auto& t : traces) {
    if (t.name == "obs_wrap_lane") lane = &t;
  }
  ASSERT_NE(lane, nullptr);
  EXPECT_EQ(lane->events.size(), static_cast<size_t>(kCapacity));
  EXPECT_EQ(lane->dropped, static_cast<uint64_t>(kSpans - kCapacity));
  EXPECT_GE(obs::dropped_events(), lane->dropped);
  // Oldest events were overwritten: the survivors are exactly the last
  // kCapacity spans, still in completion order.
  for (int k = 0; k < kCapacity; ++k) {
    EXPECT_EQ(lane->events[static_cast<size_t>(k)].args[0].value,
              kSpans - kCapacity + k);
  }
  // The wrap is visible in the export as an instant event.
  std::ostringstream os;
  obs::export_perfetto_json(os);
  EXPECT_NE(os.str().find("ring_dropped_events"), std::string::npos);
}

TEST_F(TracerTest, ClearTracesResetsEventsAndDrops) {
  obs::set_ring_capacity(4);
  obs::set_tracing(true);
  std::thread writer([] {
    obs::set_thread_name("obs_clear_lane");
    for (int i = 0; i < 10; ++i) {
      PC_SPAN("obs_clear_span");
    }
  });
  writer.join();
  obs::set_tracing(false);
  obs::set_ring_capacity(65536);
  EXPECT_GT(obs::dropped_events(), 0u);
  obs::clear_traces();
  EXPECT_EQ(total_events(obs::collect_traces()), 0u);
  EXPECT_EQ(obs::dropped_events(), 0u);
  // The lane itself survives a clear; only its contents reset.
  bool lane_present = false;
  for (const auto& t : obs::collect_traces()) {
    lane_present = lane_present || t.name == "obs_clear_lane";
  }
  EXPECT_TRUE(lane_present);
}

#else  // !PC_OBS_ENABLED

// Under -DPC_OBS=OFF the whole layer is no-op inlines: PC_SPAN compiles
// (with unevaluated arguments), nothing records, nothing collects.
TEST(TracerOff, CompilesToNothing) {
  obs::set_tracing(true);  // ignored: the gate is hardwired off
  EXPECT_FALSE(obs::tracing_enabled());
  {
    PC_SPAN("off_span", {"k", 1});
    PC_SPAN_NAMED(named, "off_named");
    named.set_arg("k", 2);
  }
  EXPECT_TRUE(obs::collect_traces().empty());
  EXPECT_EQ(obs::dropped_events(), 0u);
  EXPECT_EQ(total_events(obs::collect_traces()), 0u);
}

#endif  // PC_OBS_ENABLED

// ---- metrics registry (live in both PC_OBS modes) ---------------------------

TEST(Metrics, CounterFamilyAggregatesCells) {
  auto& reg = obs::MetricsRegistry::global();
  obs::Counter a = reg.counter("pc_test_agg_total", "test counter");
  obs::Counter b = reg.counter("pc_test_agg_total");
  a.inc(3);
  b.inc(4);
  {
    obs::Counter c = reg.counter("pc_test_agg_total");
    c.inc(5);
  }  // counter cells are retained after their owner dies
  uint64_t value = 0;
  std::string help;
  for (const auto& f : reg.collect()) {
    if (f.name != "pc_test_agg_total") continue;
    value = f.counter_value;
    help = f.help;
    EXPECT_EQ(f.type, obs::MetricType::kCounter);
  }
  EXPECT_EQ(value, 12u);
  EXPECT_EQ(help, "test counter");
}

TEST(Metrics, GaugeCellsExpireWithOwner) {
  auto& reg = obs::MetricsRegistry::global();
  obs::Gauge keeper = reg.gauge("pc_test_gauge", "test gauge");
  keeper.set(10);
  const auto family_value = [&]() -> int64_t {
    for (const auto& f : reg.collect()) {
      if (f.name == "pc_test_gauge") return f.gauge_value;
    }
    return -1;
  };
  {
    obs::Gauge temp = reg.gauge("pc_test_gauge");
    temp.set(5);
    EXPECT_EQ(family_value(), 15);
  }
  EXPECT_EQ(family_value(), 10);  // dead cell stops contributing

  {
    obs::Gauge only = reg.gauge("pc_test_gauge_expired");
    only.set(7);
  }
  for (const auto& f : reg.collect()) {
    EXPECT_NE(f.name, "pc_test_gauge_expired")
        << "fully-expired gauge family must be skipped";
  }
}

TEST(Metrics, TypeConflictThrows) {
  auto& reg = obs::MetricsRegistry::global();
  (void)reg.counter("pc_test_conflict_total");
  EXPECT_THROW((void)reg.gauge("pc_test_conflict_total"), Error);
  EXPECT_THROW((void)reg.histogram("pc_test_conflict_total"), Error);
}

TEST(Metrics, HistogramFamilyMergesCells) {
  auto& reg = obs::MetricsRegistry::global();
  obs::Histogram a = reg.histogram("pc_test_hist_seconds", "test histogram");
  obs::Histogram b = reg.histogram("pc_test_hist_seconds");
  a.record_ms(1.0);
  a.record_ms(2.0);
  b.record_ms(100.0);
  for (const auto& f : reg.collect()) {
    if (f.name != "pc_test_hist_seconds") continue;
    EXPECT_EQ(f.type, obs::MetricType::kHistogram);
    EXPECT_EQ(f.histogram_value.count(), 3u);
    EXPECT_NEAR(f.histogram_value.sum_seconds(), 0.103, 1e-9);
    EXPECT_GT(f.histogram_value.p99_ms(), f.histogram_value.p50_ms());
  }
}

TEST(Metrics, PrometheusTextCoversAllInstrumentTypes) {
  auto& reg = obs::MetricsRegistry::global();
  obs::Counter c = reg.counter("pc_test_prom_total", "prom counter");
  obs::Gauge g = reg.gauge("pc_test_prom_bytes", "prom gauge");
  obs::Histogram h = reg.histogram("pc_test_prom_seconds", "prom histogram");
  c.inc(2);
  g.set(1024);
  h.record_ms(5.0);

  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("# HELP pc_test_prom_total prom counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pc_test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("pc_test_prom_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pc_test_prom_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("pc_test_prom_bytes 1024"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pc_test_prom_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("pc_test_prom_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pc_test_prom_seconds_count 1"), std::string::npos);
  // The tracer's drop counter always scrapes, even with no drops.
  EXPECT_NE(text.find("pc_trace_dropped_events_total"), std::string::npos);
}

TEST(Metrics, DetachedHandlesWorkWithoutRegistry) {
  obs::Counter c;  // default-constructed: functional but never scraped
  c.inc(3);
  EXPECT_EQ(c.value(), 3u);
  obs::Gauge g;
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  obs::Histogram h;
  h.record_seconds(0.5);
  EXPECT_EQ(h.snapshot().count(), 1u);
}

TEST(Metrics, JsonReaderRejectsMalformedInput) {
  EXPECT_THROW(JsonReader::parse("{\"a\": }"), Error);
  EXPECT_THROW(JsonReader::parse("[1, 2"), Error);
  EXPECT_THROW(JsonReader::parse("{} trailing"), Error);
  const JsonValue v = JsonReader::parse(
      "{\"s\": \"x\\ny\", \"n\": -2.5e1, \"b\": true, \"a\": [null, 1]}");
  EXPECT_EQ(v["s"].as_string(), "x\ny");
  EXPECT_DOUBLE_EQ(v["n"].as_number(), -25.0);
  EXPECT_TRUE(v["b"].boolean);
  ASSERT_TRUE(v["a"].is_array());
  EXPECT_EQ(v["a"].array.size(), 2u);
}

}  // namespace
}  // namespace pc
